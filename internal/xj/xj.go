// Package xj translates an xmldom tree into a deterministic JSON
// document — the XJ (XML→JSON) protocol-translation use case. The
// mapping follows the common "BadgerFish-lite" convention:
//
//   - an element becomes a JSON object keyed by child element name
//   - attributes become "@name" string members
//   - character data becomes the member "#text"; an element with only
//     text (no attributes, no element children) collapses to a plain
//     JSON string
//   - repeated same-named sibling elements collapse into one array
//     member, in document order
//   - an element with no attributes, no text, and no children becomes
//     JSON null
//
// Output is fully deterministic: members appear in first-occurrence
// document order (attributes first, then "#text", then child names),
// never sorted, so byte-identical input yields byte-identical output —
// which the campaign layer relies on for reproducible measurements.
package xj

import (
	"errors"
	"strings"

	"repro/internal/xmldom"
)

// ErrNoElement reports a document without a document element.
var ErrNoElement = errors.New("xj: document has no element to translate")

// Translate renders the document (or element) rooted at n as compact
// JSON: {"<rootName>": <value>}.
func Translate(n *xmldom.Node) ([]byte, error) {
	root := n
	if root.Kind == xmldom.Document {
		root = root.DocumentElement()
		if root == nil {
			return nil, ErrNoElement
		}
	}
	if root.Kind != xmldom.Element {
		return nil, ErrNoElement
	}
	var b strings.Builder
	b.Grow(256)
	b.WriteByte('{')
	writeString(&b, root.Name)
	b.WriteByte(':')
	writeElement(&b, root)
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// writeElement emits the JSON value for one element.
func writeElement(b *strings.Builder, n *xmldom.Node) {
	text, elems := partition(n)
	if len(n.Attrs) == 0 && len(elems) == 0 {
		// Leaf: plain string, or null when fully empty.
		if text == "" {
			b.WriteString("null")
			return
		}
		writeString(b, text)
		return
	}

	b.WriteByte('{')
	first := true
	comma := func() {
		if !first {
			b.WriteByte(',')
		}
		first = false
	}
	for _, a := range n.Attrs {
		comma()
		writeString(b, "@"+a.Name)
		b.WriteByte(':')
		writeString(b, a.Value)
	}
	if text != "" {
		comma()
		writeString(b, "#text")
		b.WriteByte(':')
		writeString(b, text)
	}
	// Group same-named siblings into arrays, preserving first-occurrence
	// order. Sibling counts are small (message trees), so the linear
	// name scan beats allocating a map per element.
	for i, c := range elems {
		if indexOfName(elems[:i], c.Name) >= 0 {
			continue // already emitted inside an earlier array
		}
		comma()
		writeString(b, c.Name)
		b.WriteByte(':')
		group := sameNamed(elems[i:], c.Name)
		if len(group) == 1 && indexOfName(elems[i+1:], c.Name) < 0 {
			writeElement(b, c)
			continue
		}
		b.WriteByte('[')
		for k, g := range group {
			if k > 0 {
				b.WriteByte(',')
			}
			writeElement(b, g)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
}

// partition splits an element's children into trimmed concatenated text
// and the element children.
func partition(n *xmldom.Node) (text string, elems []*xmldom.Node) {
	var tb strings.Builder
	for _, c := range n.Children {
		switch c.Kind {
		case xmldom.Text:
			tb.WriteString(c.Data)
		case xmldom.Element:
			elems = append(elems, c)
		}
	}
	return strings.TrimSpace(tb.String()), elems
}

func indexOfName(elems []*xmldom.Node, name string) int {
	for i, e := range elems {
		if e.Name == name {
			return i
		}
	}
	return -1
}

func sameNamed(elems []*xmldom.Node, name string) []*xmldom.Node {
	var out []*xmldom.Node
	for _, e := range elems {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

const hexDigits = "0123456789abcdef"

// writeString emits s as a JSON string without the HTML-safe escaping
// json.Marshal applies (&, <, > stay literal — the translated body is
// served as application/json, not embedded in HTML).
func writeString(b *strings.Builder, s string) {
	b.WriteByte('"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		b.WriteString(s[start:i])
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteString(`\u00`)
			b.WriteByte(hexDigits[c>>4])
			b.WriteByte(hexDigits[c&0xf])
		}
		start = i + 1
	}
	b.WriteString(s[start:])
	b.WriteByte('"')
}
