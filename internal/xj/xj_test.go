package xj

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/workload"
	"repro/internal/xmldom"
)

func mustParse(t *testing.T, src string) *xmldom.Node {
	t.Helper()
	doc, err := xmldom.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func translate(t *testing.T, src string) string {
	t.Helper()
	out, err := Translate(mustParse(t, src))
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return string(out)
}

func TestTranslateShapes(t *testing.T) {
	cases := []struct {
		name, xml, want string
	}{
		{"text leaf", `<a>hi</a>`, `{"a":"hi"}`},
		{"empty leaf", `<a/>`, `{"a":null}`},
		{"attrs only", `<a id="1"/>`, `{"a":{"@id":"1"}}`},
		{"attr and text", `<a id="1">hi</a>`, `{"a":{"@id":"1","#text":"hi"}}`},
		{"nested", `<a><b>x</b><c>y</c></a>`, `{"a":{"b":"x","c":"y"}}`},
		{"repeated siblings", `<a><b>1</b><b>2</b></a>`, `{"a":{"b":["1","2"]}}`},
		{"interleaved repeats", `<a><b>1</b><c>x</c><b>2</b></a>`,
			`{"a":{"b":["1","2"],"c":"x"}}`},
		{"escaping", `<a>he said "hi" &amp; left</a>`, `{"a":"he said \"hi\" & left"}`},
		{"whitespace trimmed", "<a>\n  <b>x</b>\n</a>", `{"a":{"b":"x"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := translate(t, tc.xml); got != tc.want {
				t.Fatalf("got %s want %s", got, tc.want)
			}
		})
	}
}

func TestTranslateNoElement(t *testing.T) {
	// A bare text node is not translatable.
	if _, err := Translate(&xmldom.Node{Kind: xmldom.Text, Data: "x"}); err != ErrNoElement {
		t.Fatalf("text node: err = %v, want ErrNoElement", err)
	}
	// Nor is a document with no document element.
	if _, err := Translate(&xmldom.Node{Kind: xmldom.Document}); err != ErrNoElement {
		t.Fatalf("empty document: err = %v, want ErrNoElement", err)
	}
}

// TestTranslateWorkloadMessages runs the real SOAP generator output
// through the translator: every message must produce valid JSON with
// the envelope root, and translation must be deterministic.
func TestTranslateWorkloadMessages(t *testing.T) {
	for i := 0; i < 32; i++ {
		msg := workload.SOAPMessage(i)
		doc, err := xmldom.Parse(msg)
		if err != nil {
			t.Fatalf("msg %d: parse: %v", i, err)
		}
		out, err := Translate(doc)
		if err != nil {
			t.Fatalf("msg %d: translate: %v", i, err)
		}
		var v map[string]any
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatalf("msg %d: invalid JSON: %v\n%s", i, err, out)
		}
		if _, ok := v["soap:Envelope"]; !ok {
			t.Fatalf("msg %d: missing envelope root: %s", i, out[:120])
		}
		again, err := Translate(doc)
		if err != nil || !bytes.Equal(out, again) {
			t.Fatalf("msg %d: translation not deterministic", i)
		}
	}
}

func BenchmarkTranslate(b *testing.B) {
	doc, err := xmldom.Parse(workload.SOAPMessage(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Translate(doc); err != nil {
			b.Fatal(err)
		}
	}
}
