package httpmsg

import (
	"bytes"
	"testing"
)

func sampleRequest() *Request {
	return &Request{
		Method: "POST",
		Target: "/service/cbr",
		Proto:  "HTTP/1.1",
		Headers: []Header{
			{Name: "Host", Value: "aon-gw.example.com"},
			{Name: "Content-Type", Value: "text/xml; charset=utf-8"},
		},
		Body: []byte("<a>body</a>"),
	}
}

func TestFormatToMatchesClassic(t *testing.T) {
	req := sampleRequest()
	if got, want := FormatRequestTo(nil, req), FormatRequest(req); !bytes.Equal(got, want) {
		t.Fatalf("FormatRequestTo:\n%q\nwant\n%q", got, want)
	}
	// Pre-declared Content-Length must not be duplicated.
	req.Headers = append(req.Headers, Header{Name: "content-length", Value: "11"})
	if got, want := FormatRequestTo(nil, req), FormatRequest(req); !bytes.Equal(got, want) {
		t.Fatalf("FormatRequestTo with clen:\n%q\nwant\n%q", got, want)
	}

	for _, res := range []*Response{
		{Status: 200, Headers: []Header{{Name: "X-AON-Outcome", Value: "match"}}, Body: []byte("ok")},
		{Status: 503, Reason: "Busy"},
		{Status: 500},
	} {
		if got, want := FormatResponseTo(nil, res), FormatResponse(res); !bytes.Equal(got, want) {
			t.Fatalf("FormatResponseTo(%d):\n%q\nwant\n%q", res.Status, got, want)
		}
	}
}

func TestFormatToAppendsToDst(t *testing.T) {
	dst := []byte("prefix")
	out := FormatResponseTo(dst, &Response{Status: 200, Body: []byte("x")})
	if !bytes.HasPrefix(out, []byte("prefix")) {
		t.Fatalf("dst prefix lost: %q", out)
	}
	if !bytes.Equal(out[len("prefix"):], FormatResponse(&Response{Status: 200, Body: []byte("x")})) {
		t.Fatalf("appended bytes differ: %q", out)
	}
}

func TestParseRequestIntoMatchesClassic(t *testing.T) {
	cases := [][]byte{
		FormatRequest(sampleRequest()),
		[]byte("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"),
		[]byte("POST /s HTTP/1.1\nContent-Length: 3\n\nabc"),
		[]byte("POST /s HTTP/1.1\r\nWeird:   padded value  \r\n\r\n"),
		// Rejections.
		[]byte("POST /s\r\n\r\n"),
		[]byte("BREW /s HTTP/1.1\r\n\r\n"),
		[]byte("POST /s SPDY/3\r\n\r\n"),
		[]byte("POST /s HTTP/1.1\r\nno-colon-here\r\n\r\n"),
		[]byte("POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
		[]byte("POST /s HTTP/1.1\r\nnever-terminated"),
	}
	var into Request
	for _, src := range cases {
		want, wantErr := ParseRequest(src)
		gotErr := ParseRequestInto(src, &into)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept mismatch on %q: classic=%v into=%v", src, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if into.Method != want.Method || into.Target != want.Target || into.Proto != want.Proto {
			t.Fatalf("request line mismatch on %q: %+v vs %+v", src, into, want)
		}
		if len(into.Headers) != len(want.Headers) {
			t.Fatalf("header count mismatch on %q: %v vs %v", src, into.Headers, want.Headers)
		}
		for i := range want.Headers {
			if into.Headers[i] != want.Headers[i] {
				t.Fatalf("header %d mismatch on %q: %+v vs %+v", i, src, into.Headers[i], want.Headers[i])
			}
		}
		if !bytes.Equal(into.Body, want.Body) {
			t.Fatalf("body mismatch on %q: %q vs %q", src, into.Body, want.Body)
		}
	}
}

func TestParseRequestIntoReusesHeaders(t *testing.T) {
	var req Request
	src1 := []byte("POST /a HTTP/1.1\r\nH1: v1\r\nH2: v2\r\nH3: v3\r\n\r\n")
	if err := ParseRequestInto(src1, &req); err != nil {
		t.Fatal(err)
	}
	backing := &req.Headers[0]
	src2 := []byte("GET /b HTTP/1.1\r\nOnly: one\r\n\r\n")
	if err := ParseRequestInto(src2, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Headers) != 1 || req.Headers[0] != (Header{Name: "Only", Value: "one"}) {
		t.Fatalf("second parse headers: %+v", req.Headers)
	}
	if backing != &req.Headers[0] {
		t.Fatal("headers backing array was not reused")
	}
}
