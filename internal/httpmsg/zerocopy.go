package httpmsg

import (
	"bytes"
	"strconv"
	"strings"

	"repro/internal/zc"
)

// This file is the allocation-light half of the package: append-to-dst
// serializers (callers bring a pooled buffer; nothing is materialized in
// a throwaway strings.Builder) and a zero-copy request parser whose
// strings are views into the source frame. The classic FormatRequest and
// FormatResponse entry points delegate here, so the wire format has a
// single definition; ParseRequest keeps its own copying implementation
// because the instrumented parse mirrors it micro-op for micro-op.

// AppendRequestHeader appends the request line and headers (terminated
// by the blank line) to dst and returns the extended slice. A
// Content-Length header for bodyLen is added only when the request does
// not already carry one and bodyLen > 0, matching FormatRequest.
func AppendRequestHeader(dst []byte, r *Request, bodyLen int) []byte {
	dst = append(dst, r.Method...)
	dst = append(dst, ' ')
	dst = append(dst, r.Target...)
	dst = append(dst, ' ')
	dst = append(dst, r.Proto...)
	dst = append(dst, '\r', '\n')
	hasClen := false
	for _, h := range r.Headers {
		dst = append(dst, h.Name...)
		dst = append(dst, ':', ' ')
		dst = append(dst, h.Value...)
		dst = append(dst, '\r', '\n')
		if strings.EqualFold(h.Name, "Content-Length") {
			hasClen = true
		}
	}
	if !hasClen && bodyLen > 0 {
		dst = append(dst, "Content-Length: "...)
		dst = strconv.AppendInt(dst, int64(bodyLen), 10)
		dst = append(dst, '\r', '\n')
	}
	return append(dst, '\r', '\n')
}

// AppendResponseHeader appends the status line and headers (terminated
// by the blank line) to dst and returns the extended slice. The
// Content-Length for bodyLen is always written last, matching
// FormatResponse.
func AppendResponseHeader(dst []byte, r *Response, bodyLen int) []byte {
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(r.Status), 10)
	dst = append(dst, ' ')
	dst = append(dst, reason...)
	dst = append(dst, '\r', '\n')
	for _, h := range r.Headers {
		dst = append(dst, h.Name...)
		dst = append(dst, ':', ' ')
		dst = append(dst, h.Value...)
		dst = append(dst, '\r', '\n')
	}
	dst = append(dst, "Content-Length: "...)
	dst = strconv.AppendInt(dst, int64(bodyLen), 10)
	return append(dst, '\r', '\n', '\r', '\n')
}

// FormatRequestTo appends the full serialized request (header and body)
// to dst and returns the extended slice.
func FormatRequestTo(dst []byte, r *Request) []byte {
	dst = AppendRequestHeader(dst, r, len(r.Body))
	return append(dst, r.Body...)
}

// FormatResponseTo appends the full serialized response (header and
// body) to dst and returns the extended slice.
func FormatResponseTo(dst []byte, r *Response) []byte {
	dst = AppendResponseHeader(dst, r, len(r.Body))
	return append(dst, r.Body...)
}

// ParseRequestInto parses src into req without copying: Method, Target,
// Proto, and header names/values are views into src (TrimSpace and the
// CR strip shrink the view, never copy), Body is a subslice, and
// req.Headers reuses its previous backing array. The parsed request is
// valid only while src is alive and unmodified — the same lifetime
// contract as the gateway's pooled frames. Accept/reject decisions match
// ParseRequest exactly.
func ParseRequestInto(src []byte, req *Request) error {
	hdrs := req.Headers[:0]
	*req = Request{Headers: hdrs}
	pos := 0

	line, n, err := viewLine(src, pos)
	if err != nil {
		return err
	}
	pos = n
	sp1 := bytes.IndexByte(line, ' ')
	sp2 := -1
	if sp1 >= 0 {
		if i := bytes.IndexByte(line[sp1+1:], ' '); i >= 0 {
			sp2 = sp1 + 1 + i
		}
	}
	if sp1 < 0 || sp2 < 0 {
		return &ParseError{Offset: pos, Msg: "malformed request line"}
	}
	req.Method = zc.String(line[:sp1])
	req.Target = zc.String(line[sp1+1 : sp2])
	req.Proto = zc.String(line[sp2+1:])
	okMethod := req.Method == "POST" || req.Method == "GET" || req.Method == "PUT" ||
		req.Method == "HEAD" || req.Method == "DELETE" || req.Method == "OPTIONS"
	if !okMethod {
		return &ParseError{Offset: 0, Msg: "unknown method " + req.Method}
	}
	if !strings.HasPrefix(req.Proto, "HTTP/1.") {
		return &ParseError{Offset: 0, Msg: "unsupported protocol " + req.Proto}
	}

	for {
		line, n, err = viewLine(src, pos)
		if err != nil {
			return err
		}
		pos = n
		if len(line) == 0 {
			break
		}
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			return &ParseError{Offset: pos, Msg: "malformed header line"}
		}
		name := zc.String(bytes.TrimSpace(line[:colon]))
		value := zc.String(bytes.TrimSpace(line[colon+1:]))
		req.Headers = append(req.Headers, Header{Name: name, Value: value})
	}

	if clen := req.ContentLength(); clen >= 0 {
		if pos+clen > len(src) {
			return &ParseError{Offset: pos, Msg: "truncated body"}
		}
		req.Body = src[pos : pos+clen]
	}
	return nil
}

// viewLine returns the line starting at pos (CR/LF stripped, as a view)
// and the offset just past the LF.
func viewLine(src []byte, pos int) ([]byte, int, error) {
	i := bytes.IndexByte(src[pos:], '\n')
	if i < 0 {
		return nil, pos, &ParseError{Offset: pos, Msg: "unterminated line"}
	}
	line := src[pos : pos+i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, pos + i + 1, nil
}
