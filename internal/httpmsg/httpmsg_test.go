package httpmsg

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/perf/trace"
)

const sampleReq = "POST /service/CBR HTTP/1.1\r\n" +
	"Host: aon-gw.example.com\r\n" +
	"Content-Type: text/xml\r\n" +
	"Content-Length: 11\r\n" +
	"\r\n" +
	"<order/>abc"

func TestParseRequest(t *testing.T) {
	req, err := ParseRequest([]byte(sampleReq))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || req.Target != "/service/CBR" || req.Proto != "HTTP/1.1" {
		t.Fatalf("request line = %s %s %s", req.Method, req.Target, req.Proto)
	}
	if v, ok := req.Get("host"); !ok || v != "aon-gw.example.com" {
		t.Fatalf("case-insensitive header lookup: %q %v", v, ok)
	}
	if req.ContentLength() != 11 {
		t.Fatalf("content length = %d", req.ContentLength())
	}
	if string(req.Body) != "<order/>abc" {
		t.Fatalf("body = %q", req.Body)
	}
}

func TestParseLFOnly(t *testing.T) {
	req, err := ParseRequest([]byte("GET /x HTTP/1.0\nHost: h\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.ContentLength() != -1 {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"POST\r\n\r\n",
		"BREW /pot HTTP/1.1\r\n\r\n",
		"POST / SPDY/3\r\n\r\n",
		"POST / HTTP/1.1\r\nBadHeader\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
		"POST / HTTP/1.1\r\nHost: h",
	}
	for _, src := range bad {
		if _, err := ParseRequest([]byte(src)); err == nil {
			t.Errorf("ParseRequest(%q) succeeded", src)
		}
	}
	_, err := ParseRequest([]byte("POST\r\n\r\n"))
	if _, ok := err.(*ParseError); !ok {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(err.Error(), "httpmsg") {
		t.Fatalf("error %q lacks package prefix", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Target: "/svc",
		Proto:  "HTTP/1.1",
		Headers: []Header{
			{Name: "Host", Value: "h"},
			{Name: "X-Test", Value: "1"},
		},
		Body: []byte("hello body"),
	}
	raw := FormatRequest(req)
	back, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != req.Method || back.Target != req.Target {
		t.Fatalf("round trip mangled request line: %+v", back)
	}
	if !bytes.Equal(back.Body, req.Body) {
		t.Fatalf("round trip body = %q", back.Body)
	}
	if back.ContentLength() != len(req.Body) {
		t.Fatal("Content-Length not synthesized")
	}
}

func TestFormatPreservesExplicitContentLength(t *testing.T) {
	req := &Request{
		Method: "POST", Target: "/", Proto: "HTTP/1.1",
		Headers: []Header{{Name: "Content-Length", Value: "3"}},
		Body:    []byte("abc"),
	}
	raw := FormatRequest(req)
	if bytes.Count(raw, []byte("Content-Length")) != 1 {
		t.Fatalf("duplicate Content-Length in %q", raw)
	}
}

func TestFormatResponse(t *testing.T) {
	r := &Response{Status: 200, Body: []byte("ok")}
	out := string(FormatResponse(r))
	if !strings.HasPrefix(out, "HTTP/1.1 200 OK\r\n") {
		t.Fatalf("response = %q", out)
	}
	if !strings.Contains(out, "Content-Length: 2") {
		t.Fatal("missing content length")
	}
	for code, want := range map[int]string{400: "Bad Request", 404: "Not Found", 422: "Unprocessable Entity", 502: "Bad Gateway", 999: "Unknown"} {
		if StatusText(code) != want {
			t.Errorf("StatusText(%d) = %q", code, StatusText(code))
		}
	}
}

func TestRewriteTarget(t *testing.T) {
	cases := map[string]string{
		"http://host.example/path/x": "/path/x",
		"http://host.example":        "/",
		"/already/relative":          "/already/relative",
	}
	for in, want := range cases {
		req := &Request{Target: in}
		if got := RewriteTarget(req, trace.Nop{}); got != want {
			t.Errorf("RewriteTarget(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInstrumentedParseEmits(t *testing.T) {
	var c trace.Counting
	req, err := ParseRequestInstrumented([]byte(sampleReq), &c, 0x9000)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" {
		t.Fatal("wrong parse under instrumentation")
	}
	if c.Instr == 0 || c.Loads == 0 || c.Branches == 0 {
		t.Fatalf("no ops: %+v", c)
	}
}

func TestBadContentLength(t *testing.T) {
	req, err := ParseRequest([]byte("POST / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.ContentLength() != -1 {
		t.Fatal("invalid Content-Length not rejected")
	}
}
