// Package httpmsg parses and serializes HTTP/1.1 messages — the transport
// the paper's XML server application speaks: "processing incoming XML
// request through HTTP POST messages" (Section 3.2.1). The base use case
// (FR) is plain HTTP proxying; CBR and SV additionally process the POST
// body through the XML stack.
//
// Like the rest of the workload code, parsing is dual-use: plain or
// instrumented via a trace.Emitter.
package httpmsg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/perf/trace"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Target  string
	Proto   string
	Headers []Header
	Body    []byte
}

// Header is one header field.
type Header struct {
	Name  string
	Value string
}

// Get returns a header value by case-insensitive name.
func (r *Request) Get(name string) (string, bool) {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// ContentLength returns the declared body length (-1 if absent/invalid).
func (r *Request) ContentLength() int {
	v, ok := r.Get("Content-Length")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// ParseError reports a malformed message.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("httpmsg: offset %d: %s", e.Offset, e.Msg)
}

var (
	httpCode     = trace.NewCodeRegion(2048)
	pcLineScan   = httpCode.Site()
	pcHdrEnd     = httpCode.Site()
	pcHdrColon   = httpCode.Site()
	pcMethodOK   = httpCode.Site()
	pcClenFound  = httpCode.Site()
	pcHdrCaseCmp = httpCode.Site()
)

// parser carries instrumentation state through a parse.
type parser struct {
	src  []byte
	pos  int
	em   trace.Emitter
	base uint64
}

// ParseRequest parses an HTTP/1.1 request without instrumentation.
func ParseRequest(src []byte) (*Request, error) {
	return ParseRequestInstrumented(src, trace.Nop{}, 0)
}

// ParseRequestInstrumented parses while emitting the equivalent micro-op
// stream; base is the synthetic address of src.
func ParseRequestInstrumented(src []byte, em trace.Emitter, base uint64) (*Request, error) {
	p := &parser{src: src, em: em, base: base}
	req := &Request{}

	line, err := p.readLine()
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	p.em.ALU(len(line))
	if len(parts) != 3 {
		return nil, &ParseError{Offset: p.pos, Msg: "malformed request line"}
	}
	req.Method, req.Target, req.Proto = parts[0], parts[1], parts[2]
	okMethod := req.Method == "POST" || req.Method == "GET" || req.Method == "PUT" ||
		req.Method == "HEAD" || req.Method == "DELETE" || req.Method == "OPTIONS"
	p.em.Branch(pcMethodOK, okMethod)
	if !okMethod {
		return nil, &ParseError{Offset: 0, Msg: "unknown method " + req.Method}
	}
	if !strings.HasPrefix(req.Proto, "HTTP/1.") {
		return nil, &ParseError{Offset: 0, Msg: "unsupported protocol " + req.Proto}
	}

	for {
		line, err := p.readLine()
		if err != nil {
			return nil, err
		}
		end := line == ""
		p.em.Branch(pcHdrEnd, end)
		if end {
			break
		}
		colon := strings.IndexByte(line, ':')
		p.em.ALU(colon + 2)
		p.em.Branch(pcHdrColon, colon > 0)
		if colon <= 0 {
			return nil, &ParseError{Offset: p.pos, Msg: "malformed header line"}
		}
		name := strings.TrimSpace(line[:colon])
		value := strings.TrimSpace(line[colon+1:])
		req.Headers = append(req.Headers, Header{Name: name, Value: value})
		isClen := strings.EqualFold(name, "Content-Length")
		p.em.ALU(len(name))
		p.em.Branch(pcClenFound, isClen)
	}

	if clen := req.ContentLength(); clen >= 0 {
		if p.pos+clen > len(src) {
			return nil, &ParseError{Offset: p.pos, Msg: "truncated body"}
		}
		req.Body = src[p.pos : p.pos+clen]
		// Body bytes are touched by the copy kernels, not re-scanned
		// here; charge only the slice arithmetic.
		p.em.ALU(6)
		p.pos += clen
	}
	return req, nil
}

// readLine scans to CRLF (or LF), emitting the word-at-a-time search.
func (p *parser) readLine() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		if p.src[p.pos] == '\n' {
			line := string(p.src[start:p.pos])
			words := (p.pos - start + trace.WordBytes) / trace.WordBytes
			for w := 0; w < words; w++ {
				p.em.Load(p.base+uint64(start+w*trace.WordBytes), 1)
				p.em.ALU(2)
				p.em.Branch(pcLineScan, w+1 < words)
			}
			p.pos++
			return strings.TrimSuffix(line, "\r"), nil
		}
		p.pos++
	}
	return "", &ParseError{Offset: start, Msg: "unterminated line"}
}

// FormatRequest serializes a request into a fresh buffer. Hot paths use
// FormatRequestTo with a pooled dst instead.
func FormatRequest(r *Request) []byte {
	return FormatRequestTo(nil, r)
}

// Response is a minimal HTTP response.
type Response struct {
	Status  int
	Reason  string
	Headers []Header
	Body    []byte
}

// FormatResponse serializes a response into a fresh buffer. Hot paths
// use FormatResponseTo with a pooled dst instead.
func FormatResponse(r *Response) []byte {
	return FormatResponseTo(nil, r)
}

// StatusText maps the status codes the proxy uses.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 422:
		return "Unprocessable Entity"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	case 504:
		return "Gateway Timeout"
	}
	return "Unknown"
}

// RewriteTarget adjusts the request target for proxy forwarding: the proxy
// strips the scheme/authority and forwards the path, emitting the string
// work it implies.
func RewriteTarget(req *Request, em trace.Emitter) string {
	t := req.Target
	em.ALU(len(t) / 2)
	if i := strings.Index(t, "://"); i >= 0 {
		rest := t[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return rest[j:]
		}
		return "/"
	}
	return t
}
