// Package dpi implements deep packet inspection — multi-pattern string
// matching over message payloads with an Aho-Corasick automaton. The
// paper's future work names "crucial AON operations such as deep packet
// inspection" (Section 6); this package provides that operation as a
// fourth use case for the XML server application, with the same dual-use
// design as the rest of the stack: a real matcher that optionally emits
// the micro-op stream of its compiled equivalent.
//
// DPI's performance profile sits between FR and CBR: it touches every
// payload byte exactly once (like a checksum) but chases automaton
// transitions through a table whose footprint grows with the pattern set,
// and its per-byte branch is data-dependent — a distinct point on the
// paper's network-I/O vs CPU spectrum.
package dpi

import (
	"fmt"
	"sort"

	"repro/internal/perf/trace"
)

// Match reports one pattern occurrence.
type Match struct {
	Pattern int // index into the pattern list the matcher was built from
	End     int // byte offset just past the occurrence
}

// Matcher is an Aho-Corasick automaton over byte strings.
type Matcher struct {
	patterns []string
	// goto function: states x 256 -> state; built densely for O(1)
	// transitions like a compiled IDS engine.
	next [][256]int32
	fail []int32
	out  [][]int32 // pattern indices terminating at each state

	// simBase is the automaton's placement in the simulated address
	// space (the transition table is the DPI working set).
	simBase uint64
}

// NewMatcher builds an automaton for the given patterns. Empty patterns
// are rejected; duplicates are allowed and report separately.
func NewMatcher(patterns []string) (*Matcher, error) {
	for i, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("dpi: pattern %d is empty", i)
		}
	}
	m := &Matcher{patterns: patterns}
	m.next = append(m.next, [256]int32{})
	m.fail = append(m.fail, 0)
	m.out = append(m.out, nil)

	// Trie construction.
	for idx, p := range patterns {
		state := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if m.next[state][c] == 0 {
				m.next = append(m.next, [256]int32{})
				m.fail = append(m.fail, 0)
				m.out = append(m.out, nil)
				m.next[state][c] = int32(len(m.next) - 1)
			}
			state = m.next[state][c]
		}
		m.out[state] = append(m.out[state], int32(idx))
	}

	// BFS failure links, converting to a dense goto function.
	queue := make([]int32, 0, len(m.next))
	for c := 0; c < 256; c++ {
		if s := m.next[0][c]; s != 0 {
			m.fail[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			s := m.next[r][c]
			if s == 0 {
				m.next[r][c] = m.next[m.fail[r]][c]
				continue
			}
			queue = append(queue, s)
			f := m.next[m.fail[r]][c]
			m.fail[s] = f
			m.out[s] = append(m.out[s], m.out[f]...)
		}
	}
	return m, nil
}

// MustNewMatcher panics on error, for init-time pattern sets.
func MustNewMatcher(patterns []string) *Matcher {
	m, err := NewMatcher(patterns)
	if err != nil {
		panic(err)
	}
	return m
}

// States returns the automaton size.
func (m *Matcher) States() int { return len(m.next) }

// Patterns returns the pattern list the matcher was built from.
func (m *Matcher) Patterns() []string { return m.patterns }

// SetSimBase places the transition table in the simulated address space;
// instrumented scans emit loads into it.
func (m *Matcher) SetSimBase(base uint64) { m.simBase = base }

// SimBytes returns the simulated footprint of the transition table.
func (m *Matcher) SimBytes() uint64 { return uint64(len(m.next)) * 256 * 4 }

var (
	dpiCode      = trace.NewCodeRegion(512)
	pcStep       = dpiCode.Site()
	pcHit        = dpiCode.Site()
	pcReportLoop = dpiCode.Site()
)

// Scan runs the automaton over data without instrumentation.
func (m *Matcher) Scan(data []byte) []Match {
	return m.ScanInstrumented(data, trace.Nop{}, 0)
}

// ScanInstrumented runs the automaton while emitting the equivalent
// micro-op stream: per input byte, one load of the input word (amortized),
// one load of the transition-table entry (the data-dependent pointer
// chase that defines DPI's cache behaviour), arithmetic, and a
// data-dependent hit-check branch.
func (m *Matcher) ScanInstrumented(data []byte, em trace.Emitter, dataBase uint64) []Match {
	var out []Match
	state := int32(0)
	for i := 0; i < len(data); i++ {
		if i%trace.WordBytes == 0 {
			em.Load(dataBase+uint64(i), 1)
		}
		c := data[i]
		state = m.next[state][c]
		// The transition-table load: 4 bytes at state*1024 + c*4.
		em.Load(m.simBase+uint64(state)*1024+uint64(c)*4, 1)
		em.ALU(2)
		hit := len(m.out[state]) > 0
		em.Branch(pcHit, hit)
		if hit {
			for _, p := range m.out[state] {
				out = append(out, Match{Pattern: int(p), End: i + 1})
				em.ALU(4)
				em.Branch(pcReportLoop, true)
			}
			em.Branch(pcReportLoop, false)
		}
	}
	em.Branch(pcStep, false) // loop exit
	return out
}

// Contains reports whether any pattern occurs in data (early-exit scan).
func (m *Matcher) Contains(data []byte) bool {
	state := int32(0)
	for i := 0; i < len(data); i++ {
		state = m.next[state][data[i]]
		if len(m.out[state]) > 0 {
			return true
		}
	}
	return false
}

// UniquePatterns returns the sorted distinct pattern indices in matches.
func UniquePatterns(matches []Match) []int {
	seen := map[int]bool{}
	var out []int
	for _, m := range matches {
		if !seen[m.Pattern] {
			seen[m.Pattern] = true
			out = append(out, m.Pattern)
		}
	}
	sort.Ints(out)
	return out
}

// DefaultSignatures is the inspection rule set the DPI use case ships
// with: a small IDS-style mix of exploit markers and policy strings that
// might appear inside XML message payloads.
var DefaultSignatures = []string{
	"<script",
	"DROP TABLE",
	"../../",
	"cmd.exe",
	"/etc/passwd",
	"xp_cmdshell",
	"<!ENTITY",
	"javascript:",
	"UNION SELECT",
	"eval(",
}
