package dpi

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/perf/trace"
)

func TestBasicMatching(t *testing.T) {
	m := MustNewMatcher([]string{"he", "she", "his", "hers"})
	matches := m.Scan([]byte("ushers"))
	// "ushers": she@4, he@4, hers@6.
	if len(matches) != 3 {
		t.Fatalf("matches = %+v", matches)
	}
	got := UniquePatterns(matches)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("unique patterns = %v", got)
	}
}

func TestMatchEndOffsets(t *testing.T) {
	m := MustNewMatcher([]string{"abc"})
	matches := m.Scan([]byte("xxabcxxabc"))
	if len(matches) != 2 || matches[0].End != 5 || matches[1].End != 10 {
		t.Fatalf("matches = %+v", matches)
	}
}

func TestOverlappingPatterns(t *testing.T) {
	m := MustNewMatcher([]string{"aa", "aaa"})
	matches := m.Scan([]byte("aaaa"))
	// aa@2, aa@3(+aaa@3), aa@4(+aaa@4) -> 5 matches.
	if len(matches) != 5 {
		t.Fatalf("got %d matches: %+v", len(matches), matches)
	}
}

func TestNoMatch(t *testing.T) {
	m := MustNewMatcher(DefaultSignatures)
	clean := []byte("<order><quantity>1</quantity></order>")
	if got := m.Scan(clean); len(got) != 0 {
		t.Fatalf("false positives: %+v", got)
	}
	if m.Contains(clean) {
		t.Fatal("Contains false positive")
	}
	dirty := []byte(`<a href="javascript:alert(1)">x</a>`)
	if !m.Contains(dirty) {
		t.Fatal("signature missed")
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	if _, err := NewMatcher([]string{"ok", ""}); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestInstrumentedScanEmits(t *testing.T) {
	m := MustNewMatcher([]string{"needle"})
	m.SetSimBase(1 << 32)
	var c trace.Counting
	data := []byte(strings.Repeat("hay", 100) + "needle")
	matches := m.ScanInstrumented(data, &c, 0x1000)
	if len(matches) != 1 {
		t.Fatalf("matches = %+v", matches)
	}
	// One table load per byte plus input loads.
	if c.Loads < uint64(len(data)) {
		t.Fatalf("loads = %d for %d bytes", c.Loads, len(data))
	}
	if c.Branches < uint64(len(data)) {
		t.Fatalf("branches = %d", c.Branches)
	}
	if m.SimBytes() == 0 || m.States() < 7 {
		t.Fatalf("automaton shape: states=%d bytes=%d", m.States(), m.SimBytes())
	}
}

// Property: the matcher agrees with strings.Contains for single patterns.
func TestAgainstStringsContains(t *testing.T) {
	check := func(hay []byte, needleSeed uint8) bool {
		needles := []string{"ab", "cab", "abcab", "zz"}
		needle := needles[int(needleSeed)%len(needles)]
		m := MustNewMatcher([]string{needle})
		return m.Contains(hay) == strings.Contains(string(hay), needle)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: every reported match actually occurs at its offset.
func TestMatchesAreReal(t *testing.T) {
	pats := []string{"ab", "ba", "aab", "bbb"}
	m := MustNewMatcher(pats)
	check := func(data []byte) bool {
		// Restrict the alphabet to make matches common.
		for i := range data {
			data[i] = 'a' + data[i]%2
		}
		for _, match := range m.Scan(data) {
			p := pats[match.Pattern]
			start := match.End - len(p)
			if start < 0 || string(data[start:match.End]) != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: scan finds every occurrence strings.Index would find.
func TestCompleteness(t *testing.T) {
	pat := "abc"
	m := MustNewMatcher([]string{pat})
	check := func(data []byte) bool {
		for i := range data {
			data[i] = 'a' + data[i]%3
		}
		want := strings.Count(string(data), pat)
		return len(m.Scan(data)) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSignaturesBuild(t *testing.T) {
	m := MustNewMatcher(DefaultSignatures)
	if len(m.Patterns()) != len(DefaultSignatures) {
		t.Fatal("patterns lost")
	}
}
