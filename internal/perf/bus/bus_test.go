package bus

import "testing"

func testBus() *Bus {
	return New(Config{DataTxnCycles: 20, AddrTxnCycles: 5})
}

func TestOccupancyByKind(t *testing.T) {
	b := testBus()
	if lat := b.Transact(0, MemRead); lat != 20 {
		t.Fatalf("cold MemRead latency = %d", lat)
	}
	if lat := b.Transact(0, Invalidate); lat != 5 {
		t.Fatalf("cold Invalidate latency = %d", lat)
	}
	s := b.Stats()
	if s.TotalTxns != 2 || s.Txns[MemRead] != 1 || s.Txns[Invalidate] != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyCycles != 25 {
		t.Fatalf("busy = %d", s.BusyCycles)
	}
}

func TestUtilizationDrivesQueueing(t *testing.T) {
	b := testBus()
	// Saturate one utilization window: back-to-back transactions.
	now := uint64(0)
	for now < utilWindow+1000 {
		b.Transact(now, MemRead)
		now += 20 // 100% utilization
	}
	if b.Rho() < 0.9 {
		t.Fatalf("rho = %.2f after saturation", b.Rho())
	}
	// Subsequent transactions must observe a nonzero queueing wait.
	lat := b.Transact(now, MemRead)
	if lat <= 20 {
		t.Fatalf("saturated latency = %d, want queueing above occupancy", lat)
	}
}

func TestIdleBusHasNoQueueing(t *testing.T) {
	b := testBus()
	// Sparse traffic: one transaction per 10k cycles.
	now := uint64(0)
	for now < 3*utilWindow {
		b.Transact(now, MemRead)
		now += 10_000
	}
	if b.Rho() > 0.01 {
		t.Fatalf("rho = %.3f for idle bus", b.Rho())
	}
	if lat := b.Transact(now, MemRead); lat != 20 {
		t.Fatalf("idle-bus latency = %d", lat)
	}
}

func TestSkewImmunity(t *testing.T) {
	// Two requesters with wildly different clocks: the laggard must not
	// be charged the skew as queueing (the absolute-horizon pathology).
	b := testBus()
	b.Transact(1_000_000, MemRead) // fast CPU far in the future
	lat := b.Transact(100, MemRead)
	if lat > 20+uint64(float64(20)*maxRho/(2*(1-maxRho)))+1 {
		t.Fatalf("laggard charged %d cycles", lat)
	}
}

func TestRhoCap(t *testing.T) {
	b := testBus()
	// Overcommit: more occupancy than wall time.
	for i := 0; i < 3*int(utilWindow)/20; i++ {
		b.Transact(uint64(i), MemRead)
	}
	b.Transact(utilWindow+1, MemRead)
	if b.Rho() > maxRho {
		t.Fatalf("rho %.3f above cap", b.Rho())
	}
}

func TestResetStats(t *testing.T) {
	b := testBus()
	b.Transact(0, CacheToCache)
	b.ResetStats()
	if b.Stats().TotalTxns != 0 {
		t.Fatal("stats survive reset")
	}
}

func TestUtilizationReport(t *testing.T) {
	b := testBus()
	b.Transact(0, MemRead)
	if u := b.Utilization(40); u != 0.5 {
		t.Fatalf("utilization = %v", u)
	}
	if u := b.Utilization(0); u != 0 {
		t.Fatalf("zero-time utilization = %v", u)
	}
	if u := b.Utilization(10); u != 1 {
		t.Fatalf("clamped utilization = %v", u)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[TxnKind]string{
		MemRead: "mem-read", MemWrite: "mem-write",
		CacheToCache: "cache-to-cache", Invalidate: "invalidate",
		TxnKind(9): "invalid",
	} {
		if k.String() != want {
			t.Errorf("%d = %q want %q", k, k.String(), want)
		}
	}
}
