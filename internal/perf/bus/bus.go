// Package bus models the front-side bus shared by all processors in the
// simulated machine. Every transaction — memory reads on L2 misses, line
// write-backs, cache-to-cache transfers, and coherence invalidates —
// occupies the bus for a fixed number of CPU cycles; concurrent requesters
// queue, which is the contention mechanism behind the paper's observation
// that "larger bus traffic results in increased conflicts for bus accesses,
// which mean larger number of stall cycles" (Section 4).
package bus

// TxnKind classifies bus transactions for the statistics the paper reports
// (bus transactions per retired instruction, Figure 5 / Table 3).
type TxnKind uint8

const (
	// MemRead is a full-line read from DRAM.
	MemRead TxnKind = iota
	// MemWrite is a full-line write-back to DRAM.
	MemWrite
	// CacheToCache is a dirty-line transfer between processor packages.
	CacheToCache
	// Invalidate is an ownership-upgrade broadcast (no data phase).
	Invalidate
	numKinds
)

func (k TxnKind) String() string {
	switch k {
	case MemRead:
		return "mem-read"
	case MemWrite:
		return "mem-write"
	case CacheToCache:
		return "cache-to-cache"
	case Invalidate:
		return "invalidate"
	}
	return "invalid"
}

// Config sets the bus timing in CPU cycles. The paper's platforms both use
// a 667 MHz FSB but different core clocks, so the machine model derives
// these cycle counts from the clock ratio.
type Config struct {
	// DataTxnCycles is the bus occupancy of a transaction with a data
	// phase (read, write-back, cache-to-cache).
	DataTxnCycles uint64
	// AddrTxnCycles is the occupancy of an address-only transaction
	// (invalidate broadcast).
	AddrTxnCycles uint64
}

// Stats counts transactions and contention.
type Stats struct {
	Txns        [numKinds]uint64
	TotalTxns   uint64
	BusyCycles  uint64 // cycles the bus spent occupied
	StallCycles uint64 // cycles requesters spent queued behind others
}

// utilWindow is the utilization-sampling window in cycles: long enough to
// smooth bursts, short enough to track load changes.
const utilWindow = 100_000

// maxRho caps the utilization estimate so the queueing formula stays
// finite under saturation.
const maxRho = 0.95

// Bus is the shared front-side bus. Requesters run on logical CPUs whose
// local clocks advance at slightly different rates (the engine serializes
// software threads at step granularity), so the contention model is
// utilization-based rather than an absolute busy-until horizon: each
// transaction pays its occupancy plus an M/D/1-style queueing delay
// derived from the measured utilization of the previous window. This makes
// waits insensitive to cross-CPU clock skew while still blowing up as the
// bus saturates — the stall behaviour the paper attributes to dual-unit
// configurations (Section 4, point 3).
type Bus struct {
	cfg   Config
	stats Stats

	winStart uint64  // window anchor, in the most-advanced requester clock
	winBusy  uint64  // occupancy accumulated in the current window
	maxNow   uint64  // most advanced requester clock seen
	rho      float64 // utilization of the previous window
}

// New creates a bus with the given timing.
func New(cfg Config) *Bus {
	return &Bus{cfg: cfg}
}

// Transact performs one transaction for a requester whose local clock is
// now (in global CPU cycles). It returns the total latency the requester
// observes: a utilization-derived queueing delay plus the transaction's
// own occupancy.
func (b *Bus) Transact(now uint64, kind TxnKind) (latency uint64) {
	occupancy := b.cfg.DataTxnCycles
	if kind == Invalidate {
		occupancy = b.cfg.AddrTxnCycles
	}

	if now > b.maxNow {
		b.maxNow = now
	}
	if b.maxNow >= b.winStart+utilWindow {
		b.rho = float64(b.winBusy) / float64(b.maxNow-b.winStart)
		if b.rho > maxRho {
			b.rho = maxRho
		}
		b.winStart = b.maxNow
		b.winBusy = 0
	}
	b.winBusy += occupancy

	// M/D/1 mean wait: rho/(2(1-rho)) service times.
	wait := uint64(float64(b.cfg.DataTxnCycles) * b.rho / (2 * (1 - b.rho)))

	b.stats.Txns[kind]++
	b.stats.TotalTxns++
	b.stats.BusyCycles += occupancy
	b.stats.StallCycles += wait
	return wait + occupancy
}

// Rho returns the utilization estimate from the previous window.
func (b *Bus) Rho() float64 { return b.rho }

// Peek returns the queueing delay a requester at cycle now would incur,
// without reserving the bus.
func (b *Bus) Peek(now uint64) uint64 {
	return uint64(float64(b.cfg.DataTxnCycles) * b.rho / (2 * (1 - b.rho)))
}

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// ResetStats zeroes the counters without releasing the bus reservation.
func (b *Bus) ResetStats() { b.stats = Stats{} }

// Utilization returns busy cycles / elapsed cycles over [0, now]; used by
// reports and tests.
func (b *Bus) Utilization(now uint64) float64 {
	if now == 0 {
		return 0
	}
	u := float64(b.stats.BusyCycles) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}
