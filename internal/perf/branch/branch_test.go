package branch

import (
	"testing"
	"testing/quick"
)

func pm() *Predictor {
	return New(Config{Name: "pm", PatternBits: 15, HistoryBits: 14, Chooser: true})
}

func netburst() *Predictor {
	return New(Config{Name: "nb", PatternBits: 11, HistoryBits: 6, Chooser: false})
}

func TestLearnsAlwaysTaken(t *testing.T) {
	for _, p := range []*Predictor{pm(), netburst()} {
		miss := 0
		for i := 0; i < 1000; i++ {
			if p.Predict(0x400, true) {
				miss++
			}
		}
		if miss > 5 {
			t.Errorf("%s: %d mispredicts on an always-taken branch", p.Config().Name, miss)
		}
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	for _, p := range []*Predictor{pm(), netburst()} {
		miss := 0
		for i := 0; i < 1000; i++ {
			if p.Predict(0x404, false) {
				miss++
			}
		}
		if miss > 5 {
			t.Errorf("%s: %d mispredicts on a never-taken branch", p.Config().Name, miss)
		}
	}
}

func TestLearnsShortLoop(t *testing.T) {
	// A loop that runs 8 iterations then exits: the exit branch is the
	// only hard part; a history-based predictor learns the whole pattern.
	p := pm()
	miss := 0
	for rep := 0; rep < 500; rep++ {
		for i := 0; i < 8; i++ {
			if p.Predict(0x500, i < 7) {
				miss++
			}
		}
	}
	rate := float64(miss) / 4000
	if rate > 0.05 {
		t.Fatalf("loop misprediction rate %.3f", rate)
	}
}

func TestLongHistoryBeatsShort(t *testing.T) {
	// Period-13 pattern: within reach of a 14-bit history, beyond a
	// 6-bit one. This is the structural gap behind the platforms'
	// misprediction difference (Table 6).
	run := func(p *Predictor) float64 {
		miss := 0
		n := 20000
		for i := 0; i < n; i++ {
			if p.Predict(0x600, i%13 == 0) {
				miss++
			}
		}
		return float64(miss) / float64(n)
	}
	pmRate := run(pm())
	nbRate := run(netburst())
	if pmRate >= nbRate {
		t.Fatalf("long history (%.3f) did not beat short history (%.3f)", pmRate, nbRate)
	}
}

func TestStatsAndReset(t *testing.T) {
	p := netburst()
	for i := 0; i < 100; i++ {
		p.Predict(uint64(i*4), i%3 == 0)
	}
	s := p.Stats()
	if s.Lookups != 100 {
		t.Fatalf("lookups = %d", s.Lookups)
	}
	if s.Mispredict == 0 {
		t.Fatal("no mispredictions on a noisy stream")
	}
	if r := s.MispredictRatio(); r <= 0 || r > 1 {
		t.Fatalf("ratio = %v", r)
	}
	p.ResetStats()
	if p.Stats().Lookups != 0 {
		t.Fatal("stats survive ResetStats")
	}
	p.Reset()
	if p.Stats().Lookups != 0 {
		t.Fatal("stats survive Reset")
	}
}

func TestEmptyStatsRatio(t *testing.T) {
	var s Stats
	if s.MispredictRatio() != 0 {
		t.Fatal("empty ratio not zero")
	}
}

// Property: mispredictions never exceed lookups, for any outcome stream.
func TestMispredictBoundProperty(t *testing.T) {
	p := pm()
	check := func(pcs []uint16, outcomes []bool) bool {
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		before := p.Stats()
		for i := 0; i < n; i++ {
			p.Predict(uint64(pcs[i])*4, outcomes[i])
		}
		after := p.Stats()
		return after.Mispredict-before.Mispredict <= after.Lookups-before.Lookups
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Sharing one predictor between two interleaved streams (the SMT model)
// must not mispredict less than the better of the two run in isolation —
// destructive aliasing only hurts.
func TestSharedPredictorInterference(t *testing.T) {
	isolated := func() float64 {
		p := netburst()
		miss := 0
		for i := 0; i < 8000; i++ {
			if p.Predict(0x700, i%2 == 0) {
				miss++
			}
		}
		return float64(miss) / 8000
	}()

	shared := func() float64 {
		p := netburst()
		miss := 0
		for i := 0; i < 8000; i++ {
			if p.Predict(0x700, i%2 == 0) {
				miss++
			}
			// The sibling thread pollutes global history with an
			// uncorrelated stream.
			p.Predict(0x900+uint64(i%16)*4, (i*2654435761)%5 < 2)
		}
		return float64(miss) / 8000
	}()

	if shared < isolated {
		t.Fatalf("sharing improved prediction: %.4f < %.4f", shared, isolated)
	}
}
