// Package branch implements the branch-direction predictors of the two
// simulated microarchitectures.
//
// The Pentium M model uses a gshare predictor with a long global history
// and a large pattern table plus a loop-friendly bimodal fallback chooser,
// reflecting the "advanced branch prediction" Intel shipped in Banias/Dothan
// and that the paper credits for the Pentium M's much lower misprediction
// ratios (Table 6). The Xeon (Netburst) model uses a smaller gshare with a
// shorter history.
//
// Hyperthreading is modeled faithfully to the paper's finding 6: the two
// logical CPUs of an HT core share one physical predictor, and the pattern
// tables are indexed without any thread identity, so two instruction streams
// alias destructively. The machine model expresses this simply by handing
// both logical CPUs the same *Predictor.
package branch

// Config sizes a predictor.
type Config struct {
	Name        string
	PatternBits int  // log2 of the two-bit-counter pattern table size
	HistoryBits int  // global history length used in the gshare index
	Chooser     bool // hybrid bimodal/gshare with a chooser table
}

// Stats counts predictor events.
type Stats struct {
	Lookups    uint64
	Mispredict uint64
}

// Predictor is a hybrid gshare/bimodal branch direction predictor with
// two-bit saturating counters.
type Predictor struct {
	cfg      Config
	gshare   []uint8 // 2-bit counters
	bimodal  []uint8 // 2-bit counters (hybrid only)
	chooser  []uint8 // 2-bit chooser: >=2 favors gshare
	mask     uint64
	history  uint64
	histMask uint64
	stats    Stats
}

// New builds a predictor. Counters start weakly taken, matching hardware
// reset state closely enough for steady-state measurement.
func New(cfg Config) *Predictor {
	size := 1 << cfg.PatternBits
	p := &Predictor{
		cfg:      cfg,
		gshare:   make([]uint8, size),
		mask:     uint64(size - 1),
		histMask: (1 << cfg.HistoryBits) - 1,
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	if cfg.Chooser {
		p.bimodal = make([]uint8, size)
		p.chooser = make([]uint8, size)
		for i := range p.bimodal {
			p.bimodal[i] = 2
			p.chooser[i] = 2
		}
	}
	return p
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) gshareIdx(pc uint64) uint64 {
	return ((pc >> 2) ^ (p.history & p.histMask)) & p.mask
}

func (p *Predictor) bimodalIdx(pc uint64) uint64 {
	return (pc >> 2) & p.mask
}

// Predict runs one branch through the predictor, updates all tables with
// the actual outcome, and reports whether the prediction was wrong.
func (p *Predictor) Predict(pc uint64, taken bool) (mispredicted bool) {
	p.stats.Lookups++
	gi := p.gshareIdx(pc)
	gPred := p.gshare[gi] >= 2

	pred := gPred
	var bi uint64
	if p.cfg.Chooser {
		bi = p.bimodalIdx(pc)
		bPred := p.bimodal[bi] >= 2
		if p.chooser[bi] < 2 {
			pred = bPred
		}
		// Chooser trains toward whichever component was right.
		if gPred != bPred {
			if gPred == taken {
				if p.chooser[bi] < 3 {
					p.chooser[bi]++
				}
			} else if p.chooser[bi] > 0 {
				p.chooser[bi]--
			}
		}
		p.bimodal[bi] = train(p.bimodal[bi], taken)
	}

	p.gshare[gi] = train(p.gshare[gi], taken)
	p.history = (p.history << 1) | b2u(taken)

	if pred != taken {
		p.stats.Mispredict++
		return true
	}
	return false
}

func train(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats returns a snapshot of the counters.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats zeroes the counters, preserving learned state (measurement
// windows on hardware do not clear predictor arrays).
func (p *Predictor) ResetStats() { p.stats = Stats{} }

// Reset clears both counters and learned state, for cold-start tests.
func (p *Predictor) Reset() {
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	p.history = 0
	p.stats = Stats{}
}

// MispredictRatio returns mispredictions per lookup, the paper's BrMPR.
func (s Stats) MispredictRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredict) / float64(s.Lookups)
}
