package tlb

import (
	"testing"
	"testing/quick"
)

func testTLB(entries int) *TLB {
	return New(Config{Entries: entries, PageBits: 12, WalkCost: 30})
}

func TestHitAfterMiss(t *testing.T) {
	tl := testTLB(4)
	pen, miss := tl.Access(0x5000)
	if !miss || pen != 30 {
		t.Fatalf("cold access: pen=%d miss=%v", pen, miss)
	}
	pen, miss = tl.Access(0x5abc) // same page
	if miss || pen != 0 {
		t.Fatalf("same-page access missed: pen=%d miss=%v", pen, miss)
	}
	s := tl.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := testTLB(2)
	tl.Access(0x1000) // page 1
	tl.Access(0x2000) // page 2
	tl.Access(0x1000) // touch page 1; page 2 is LRU
	tl.Access(0x3000) // evicts page 2
	if _, miss := tl.Access(0x1000); miss {
		t.Fatal("MRU page evicted")
	}
	if _, miss := tl.Access(0x2000); !miss {
		t.Fatal("LRU page survived")
	}
}

func TestFlush(t *testing.T) {
	tl := testTLB(8)
	tl.Access(0x1000)
	tl.Flush()
	if _, miss := tl.Access(0x1000); !miss {
		t.Fatal("translation survived flush")
	}
}

func TestZeroPageHandled(t *testing.T) {
	tl := testTLB(4)
	if _, miss := tl.Access(0x10); !miss {
		t.Fatal("first access to page 0 did not miss")
	}
	if _, miss := tl.Access(0x20); miss {
		t.Fatal("page 0 not cached")
	}
}

// Property: hit rate for a working set within capacity is perfect after
// the first touch.
func TestCapacityProperty(t *testing.T) {
	check := func(seed uint8) bool {
		tl := testTLB(16)
		// Touch 16 distinct pages twice; second round must all hit.
		for round := 0; round < 2; round++ {
			for p := 0; p < 16; p++ {
				tl.Access(uint64(seed)<<20 + uint64(p)<<12)
			}
		}
		return tl.Stats().Misses == 16
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	tl := testTLB(4)
	tl.Access(0x1000)
	tl.ResetStats()
	if tl.Stats().Accesses != 0 {
		t.Fatal("stats survive reset")
	}
	if _, miss := tl.Access(0x1000); miss {
		t.Fatal("ResetStats dropped translations")
	}
}
