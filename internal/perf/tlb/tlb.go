// Package tlb models a data TLB: a small fully-associative translation
// cache with LRU replacement. A miss costs a page-walk latency and adds
// memory traffic charged by the machine model. TLB misses are one of the
// processor events the paper lists as collected via VTune (Section 3.3).
package tlb

// Config sizes the TLB.
type Config struct {
	Entries  int  // number of translations held
	PageBits uint // log2 of the page size (12 => 4 KiB)
	WalkCost int  // page-walk latency in cycles on a miss
}

// Stats counts TLB events.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// TLB is a fully-associative translation lookaside buffer.
type TLB struct {
	cfg   Config
	pages []uint64
	valid []bool
	lru   []uint64
	clock uint64
	stats Stats
}

// New builds a TLB.
func New(cfg Config) *TLB {
	return &TLB{
		cfg:   cfg,
		pages: make([]uint64, cfg.Entries),
		valid: make([]bool, cfg.Entries),
		lru:   make([]uint64, cfg.Entries),
	}
}

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }

// Access translates addr. It returns the extra latency (0 on a hit, the
// page-walk cost on a miss) and whether the access missed.
func (t *TLB) Access(addr uint64) (penalty int, miss bool) {
	t.stats.Accesses++
	page := addr >> t.cfg.PageBits
	victim := 0
	var victimLRU uint64 = ^uint64(0)
	for i, p := range t.pages {
		if t.valid[i] && p == page {
			t.clock++
			t.lru[i] = t.clock
			return 0, false
		}
		if t.lru[i] < victimLRU {
			victimLRU = t.lru[i]
			victim = i
		}
	}
	t.stats.Misses++
	t.clock++
	t.pages[victim] = page
	t.valid[victim] = true
	t.lru[victim] = t.clock
	return t.cfg.WalkCost, true
}

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters, preserving translations.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Flush drops all translations (context switch to a new address space).
func (t *TLB) Flush() {
	for i := range t.pages {
		t.valid[i] = false
		t.lru[i] = 0
	}
	t.clock = 0
}
