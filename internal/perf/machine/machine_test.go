package machine

import (
	"strings"
	"testing"

	"repro/internal/perf/counters"
	"repro/internal/perf/trace"
)

func TestTopologies(t *testing.T) {
	cases := map[ConfigID]struct {
		pkgs, cores, threads, lcpus int
	}{
		OneCPm: {1, 1, 1, 1},
		TwoCPm: {1, 2, 1, 2},
		OneLPx: {1, 1, 1, 1},
		TwoLPx: {1, 1, 2, 2},
		TwoPPx: {2, 1, 1, 2},
	}
	for id, want := range cases {
		topo := id.Topology()
		if topo.Packages != want.pkgs || topo.CoresPerPkg != want.cores || topo.ThreadsPerCore != want.threads {
			t.Errorf("%s topology = %+v", id, topo)
		}
		if topo.LogicalCPUs() != want.lcpus {
			t.Errorf("%s logical CPUs = %d, want %d", id, topo.LogicalCPUs(), want.lcpus)
		}
		m := New(id, Options{})
		if len(m.LCPUs) != want.lcpus {
			t.Errorf("%s machine has %d LCPUs", id, len(m.LCPUs))
		}
		if len(m.Packages) != want.pkgs {
			t.Errorf("%s machine has %d packages", id, len(m.Packages))
		}
	}
}

func TestSharedStructures(t *testing.T) {
	// 2CPm: two cores share one L2, have private L1s and predictors.
	m := New(TwoCPm, Options{})
	c0, c1 := m.Packages[0].Cores[0], m.Packages[0].Cores[1]
	if c0.L2 != c1.L2 {
		t.Error("2CPm cores do not share L2")
	}
	if c0.L1 == c1.L1 {
		t.Error("2CPm cores share L1")
	}
	if c0.Core.Pred == c1.Core.Pred {
		t.Error("2CPm cores share a branch predictor")
	}

	// 2LPx: two logical CPUs share core, L1, L2 and predictor.
	m = New(TwoLPx, Options{})
	lc0, lc1 := m.LCPUs[0], m.LCPUs[1]
	if lc0.Core != lc1.Core {
		t.Error("2LPx logical CPUs on different cores")
	}
	if lc0.Core.Pred != lc1.Core.Pred {
		t.Error("2LPx logical CPUs have private predictors without the ablation")
	}

	// 2PPx: fully private.
	m = New(TwoPPx, Options{})
	p0, p1 := m.Packages[0].Cores[0], m.Packages[1].Cores[0]
	if p0.L2 == p1.L2 || p0.L1 == p1.L1 {
		t.Error("2PPx packages share caches")
	}
}

func TestPrivatePredictorAblation(t *testing.T) {
	m := New(TwoLPx, Options{PrivatePredictors: true})
	if m.LCPUs[1].PredOverride == nil {
		t.Fatal("second SMT thread lacks a private predictor")
	}
	if m.LCPUs[0].PredOverride != nil {
		t.Fatal("first SMT thread should keep the shared predictor")
	}
}

func TestPrivateL2Ablation(t *testing.T) {
	m := New(TwoCPm, Options{PrivateL2: true})
	c0, c1 := m.Packages[0].Cores[0], m.Packages[0].Cores[1]
	if c0.L2 == c1.L2 {
		t.Fatal("ablation left the L2 shared")
	}
	want := PentiumM().L2.Size / 2
	if c0.L2.Config().Size != want {
		t.Fatalf("ablated L2 size = %d, want %d", c0.L2.Config().Size, want)
	}
}

func TestMemoryHierarchyBasics(t *testing.T) {
	m := New(OneCPm, Options{})
	lc := m.LCPUs[0]
	var cs counters.Set
	addr := uint64(1 << 30)

	// Cold read: L1 miss, L2 miss, DRAM reference over the bus.
	stall := lc.Mem.Access(0, addr, false, &cs)
	if stall <= 0 {
		t.Fatal("cold access free")
	}
	if cs.Get(counters.L1Misses) != 1 || cs.Get(counters.L2Misses) != 1 {
		t.Fatalf("miss counters = %d/%d", cs.Get(counters.L1Misses), cs.Get(counters.L2Misses))
	}
	if cs.Get(counters.BusTxns) == 0 {
		t.Fatal("no bus transaction for a DRAM read")
	}

	// Warm read: L1 hit, cheap.
	warm := lc.Mem.Access(100, addr, false, &cs)
	if warm >= stall {
		t.Fatalf("warm access (%v) not cheaper than cold (%v)", warm, stall)
	}
	if cs.Get(counters.L1Misses) != 1 {
		t.Fatal("warm access missed L1")
	}
}

func TestCrossCoreDirtyTransfer(t *testing.T) {
	m := New(TwoCPm, Options{})
	a, b := m.LCPUs[0], m.LCPUs[1]
	var csA, csB counters.Set
	addr := uint64(2 << 30)

	a.Mem.Access(0, addr, true, &csA) // dirty in core 0's L1
	stall := b.Mem.Access(10, addr, false, &csB)
	if stall <= 0 {
		t.Fatal("cross-core dirty pull free")
	}
	// Pentium M: intervention goes through memory — two bus txns.
	if csB.Get(counters.BusTxns) < 2 {
		t.Fatalf("intervention bus txns = %d, want >= 2", csB.Get(counters.BusTxns))
	}
	// The line must not be counted as an L2 miss (found on-package).
	if csB.Get(counters.L2Misses) != 0 {
		t.Fatal("intervention counted as L2 miss")
	}
}

func TestCrossPackageCoherence(t *testing.T) {
	m := New(TwoPPx, Options{})
	a, b := m.LCPUs[0], m.LCPUs[1]
	var csA, csB counters.Set
	addr := uint64(3 << 30)

	a.Mem.Access(0, addr, true, &csA)
	stall := b.Mem.Access(10, addr, false, &csB)
	if stall <= 0 {
		t.Fatal("cross-package pull free")
	}
	if csB.Get(counters.L2Misses) != 1 {
		t.Fatal("cross-package pull must miss the local L2")
	}

	// The writer re-acquiring ownership invalidates the reader's copy.
	csA.Reset()
	a.Mem.Access(20, addr, true, &csA)
	var csB2 counters.Set
	stall2 := b.Mem.Access(30, addr, false, &csB2)
	if stall2 <= 0 {
		t.Fatal("re-read after invalidation free")
	}
}

func TestFreeCoherenceAblation(t *testing.T) {
	base := New(TwoPPx, Options{})
	abl := New(TwoPPx, Options{FreeCoherence: true})
	addr := uint64(4 << 30)
	var cs counters.Set

	base.LCPUs[0].Mem.Access(0, addr, true, &cs)
	baseStall := base.LCPUs[1].Mem.Access(10, addr, false, &cs)

	abl.LCPUs[0].Mem.Access(0, addr, true, &cs)
	ablStall := abl.LCPUs[1].Mem.Access(10, addr, false, &cs)

	if ablStall >= baseStall {
		t.Fatalf("free coherence (%v) not cheaper than faithful (%v)", ablStall, baseStall)
	}
}

func TestPrefetcherGeneratesBusTraffic(t *testing.T) {
	m := New(OneCPm, Options{})
	lc := m.LCPUs[0]
	var cs counters.Set
	// Ascending stream of line-sized strides triggers the prefetcher.
	base := uint64(5 << 30)
	for i := 0; i < 32; i++ {
		lc.Mem.Access(uint64(i*100), base+uint64(i)*64, false, &cs)
	}
	demand := cs.Get(counters.L2Misses)
	txns := cs.Get(counters.BusTxns)
	if txns <= demand {
		t.Fatalf("prefetcher idle: txns=%d demand misses=%d", txns, demand)
	}

	// Ablated: transactions equal demand misses.
	m2 := New(OneCPm, Options{NoPrefetch: true})
	var cs2 counters.Set
	for i := 0; i < 32; i++ {
		m2.LCPUs[0].Mem.Access(uint64(i*100), base+uint64(i)*64, false, &cs2)
	}
	if cs2.Get(counters.BusTxns) != cs2.Get(counters.L2Misses) {
		t.Fatalf("no-prefetch txns=%d misses=%d", cs2.Get(counters.BusTxns), cs2.Get(counters.L2Misses))
	}
}

func TestDMAWriteInvalidates(t *testing.T) {
	m := New(OneCPm, Options{})
	lc := m.LCPUs[0]
	var cs counters.Set
	addr := uint64(6 << 30)
	lc.Mem.Access(0, addr, false, &cs)
	cs.Reset()
	lc.Mem.Access(10, addr, false, &cs)
	if cs.Get(counters.L1Misses) != 0 {
		t.Fatal("line not cached before DMA")
	}
	m.DMAWrite(20, addr, 64)
	cs.Reset()
	lc.Mem.Access(30, addr, false, &cs)
	if cs.Get(counters.L1Misses) != 1 {
		t.Fatal("DMA write did not invalidate the cached line")
	}
}

func TestWindowAccounting(t *testing.T) {
	m := New(TwoCPm, Options{})
	m.ResetWindow()
	m.LCPUs[0].Execute([]trace.Op{{Kind: trace.ALU, N: 1000}})
	end := m.MaxNow()
	m.CloseWindow(end)
	c0 := m.LCPUs[0].Counters
	c1 := m.LCPUs[1].Counters
	if c0.Get(counters.Clockticks) == 0 {
		t.Fatal("no clockticks on the busy CPU")
	}
	// The idle CPU ticks the same wall time but retires nothing.
	if c1.Get(counters.Clockticks) != c0.Get(counters.Clockticks) {
		t.Fatalf("clocktick mismatch: %d vs %d", c0.Get(counters.Clockticks), c1.Get(counters.Clockticks))
	}
	if c1.Get(counters.InstrRetired) != 0 {
		t.Fatal("idle CPU retired instructions")
	}
	sys := m.SystemCounters()
	if sys.Get(counters.InstrRetired) != c0.Get(counters.InstrRetired) {
		t.Fatal("system merge wrong")
	}
}

func TestSecondsCyclesRoundTrip(t *testing.T) {
	m := New(OneLPx, Options{})
	if got := m.Seconds(m.Cycles(0.5)); got < 0.4999 || got > 0.5001 {
		t.Fatalf("round trip = %v", got)
	}
}

func TestSpecsTable(t *testing.T) {
	out := SpecsTable()
	for _, want := range []string{"Pentium M", "Xeon", "1.83GHz", "3.16GHz", "2MB", "1MB", "667MHz", "gcc 3.4.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	for _, id := range AllConfigs {
		if id.Explanation() == "unknown configuration" {
			t.Errorf("%s has no explanation", id)
		}
	}
}

func TestMachineString(t *testing.T) {
	s := New(TwoLPx, Options{}).String()
	if !strings.Contains(s, "2LPx") || !strings.Contains(s, "Xeon") {
		t.Fatalf("machine string %q", s)
	}
}
