// Package machine assembles the microarchitectural components — cores,
// caches, TLBs, branch predictors, front-side bus — into the five system
// configurations the paper evaluates (Table 2), parameterized by the two
// platform specifications of Table 1.
package machine

import (
	"fmt"

	"repro/internal/perf/branch"
	"repro/internal/perf/cache"
	"repro/internal/perf/codegen"
	"repro/internal/perf/cpu"
	"repro/internal/perf/tlb"
)

// PlatformSpec captures one platform row of the paper's Table 1 plus the
// microarchitectural parameters the simulator needs. Latency-style fields
// are expressed in nanoseconds so the same numbers apply across core
// clocks; the machine converts them to cycles at build time.
type PlatformSpec struct {
	Name     string
	ClockHz  float64
	FSBHz    float64
	DRAMSize uint64 // informational (Table 1)

	L1D  cache.Config
	L2   cache.Config
	DTLB tlb.Config

	Core      cpu.Config
	Predictor branch.Config
	Profile   codegen.Profile

	// DRAMLatencyNs is the memory access latency beyond L2 (row access +
	// FSB address phase), excluding bus queueing which the bus model adds.
	DRAMLatencyNs float64
	// C2CLatencyNs is the latency of a dirty cache-to-cache transfer
	// between processor packages over the FSB.
	C2CLatencyNs float64
	// InterventionNs is the latency of a dirty transfer between sibling
	// cores inside one package (through the shared L2 interface).
	InterventionNs float64
	// BusDataNs / BusAddrNs are the FSB occupancy of a data-phase and an
	// address-only transaction respectively.
	BusDataNs float64
	BusAddrNs float64

	// StreamPrefetch enables the L2 stream prefetchers (the Pentium M
	// "Smart Memory Access" technology the paper credits for the
	// platform's elevated bus-transaction rates, Section 5.4).
	StreamPrefetch bool
	// WritebackOnIntervention models the dual-core Pentium M pushing a
	// dirty line to memory over the FSB when a sibling core pulls it,
	// the source of the 2CPm bus traffic in the paper's Table 3.
	WritebackOnIntervention bool

	OSVersion string // informational (Table 1)
	Compiler  string // informational (Table 1)
}

// PentiumM returns the dual-core Pentium M platform specification
// (Table 1, left column). The pipeline numbers model the Banias/Dothan
// microarchitecture line the paper describes: wide dynamic execution,
// a 12-stage pipeline, an advanced hybrid branch predictor, and the Smart
// Memory Access prefetchers.
func PentiumM() PlatformSpec {
	return PlatformSpec{
		Name:     "Pentium M",
		ClockHz:  1.83e9,
		FSBHz:    667e6,
		DRAMSize: 2 << 30,
		L1D: cache.Config{
			Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 3,
		},
		L2: cache.Config{
			Name: "L2", Size: 2 << 20, LineSize: 64, Assoc: 8, Latency: 14,
		},
		DTLB: tlb.Config{Entries: 128, PageBits: 12, WalkCost: 25},
		Core: cpu.Config{
			Name:    "pentium-m-core",
			ClockHz: 1.83e9,
			// Effective sustainable IPC ceiling for integer/string code,
			// folding in dependency-chain limits; calibrated against the
			// paper's SV CPI of ~1.0 on 1CPm (Table 4).
			IssueWidth:        1.05,
			MispredictPenalty: 12,
			MemOverlap:        0.70,
			SMTOverhead:       1.0, // no Hyperthreading on this platform
		},
		Predictor: branch.Config{
			Name: "pm-hybrid", PatternBits: 15, HistoryBits: 14, Chooser: true,
		},
		Profile:                 codegen.PentiumM,
		DRAMLatencyNs:           110,
		C2CLatencyNs:            110,
		InterventionNs:          28,
		BusDataNs:               12,
		BusAddrNs:               4,
		StreamPrefetch:          true,
		WritebackOnIntervention: true,
		OSVersion:               "RHAS4 2.6 Kernel",
		Compiler:                "gcc 3.4.5 -O3",
	}
}

// Xeon returns the Netburst Xeon platform specification (Table 1, right
// column): higher clock, deeper pipeline with a large misprediction
// penalty, smaller caches, a weaker predictor, and Hyperthreading.
func Xeon() PlatformSpec {
	return PlatformSpec{
		Name:     "Xeon",
		ClockHz:  3.16e9,
		FSBHz:    667e6,
		DRAMSize: 2 << 30,
		L1D: cache.Config{
			Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 8, Latency: 4,
		},
		L2: cache.Config{
			Name: "L2", Size: 1 << 20, LineSize: 64, Assoc: 8, Latency: 22,
		},
		DTLB: tlb.Config{Entries: 64, PageBits: 12, WalkCost: 30},
		Core: cpu.Config{
			Name:    "netburst-core",
			ClockHz: 3.16e9,
			// Netburst sustains a lower IPC on branchy integer code; the
			// value is calibrated against the paper's SV CPI of ~1.9 on
			// 1LPx (Table 4).
			IssueWidth:        0.55,
			MispredictPenalty: 30,
			MemOverlap:        0.40,
			SMTOverhead:       1.15,
			SMTStatic:         1.13,
		},
		Predictor: branch.Config{
			Name: "netburst-gshare", PatternBits: 11, HistoryBits: 6, Chooser: false,
		},
		Profile:                 codegen.Netburst,
		DRAMLatencyNs:           105,
		C2CLatencyNs:            110,
		InterventionNs:          30,
		BusDataNs:               12,
		BusAddrNs:               4,
		StreamPrefetch:          false,
		WritebackOnIntervention: false,
		OSVersion:               "RHAS4 2.6 Kernel",
		Compiler:                "gcc 3.4.5 -O3",
	}
}

// ConfigID names one of the five systems under test (Table 2).
type ConfigID string

const (
	// OneCPm is the Pentium M with a single core enabled (maxcpus=1).
	OneCPm ConfigID = "1CPm"
	// TwoCPm is the Pentium M with both cores enabled.
	TwoCPm ConfigID = "2CPm"
	// OneLPx is one Xeon with Hyperthreading disabled: one logical CPU.
	OneLPx ConfigID = "1LPx"
	// TwoLPx is one Xeon with Hyperthreading enabled: two logical CPUs on
	// one physical processor.
	TwoLPx ConfigID = "2LPx"
	// TwoPPx is two physical Xeons with Hyperthreading disabled.
	TwoPPx ConfigID = "2PPx"
	// FourCPm is an extension beyond the paper's grid: a four-core
	// Pentium M sharing one L2, for the "extending this study to
	// multicore" future work (Section 6).
	FourCPm ConfigID = "4CPm"
)

// AllConfigs lists the systems under test in the paper's reporting order;
// the evaluation grid covers exactly these.
var AllConfigs = []ConfigID{OneCPm, TwoCPm, OneLPx, TwoLPx, TwoPPx}

// ExtendedConfigs are configurations implemented beyond the paper's grid.
var ExtendedConfigs = []ConfigID{FourCPm}

// Explanation returns the paper's Table 2 description for a configuration.
func (id ConfigID) Explanation() string {
	switch id {
	case OneCPm:
		return "Pentium M processor booted with SMP Linux kernel using only one of two cores with maxcpus=1 bootloader flag"
	case TwoCPm:
		return "Pentium M processor booted with SMP Linux kernel using both the cores with maxcpus=2"
	case OneLPx:
		return "Xeon processor with Hyperthreading disabled from BIOS and booted with SMP Linux kernel using a single CPU with maxcpus=1"
	case TwoLPx:
		return "Xeon processor with Hyperthreading enabled from BIOS and booted with SMP Linux kernel using two logical CPUs with maxcpus=2"
	case TwoPPx:
		return "Xeon processors with Hyperthreading disabled from BIOS and booted with SMP Linux kernel using two physical CPUs with maxcpus=2"
	case FourCPm:
		return "Extension: hypothetical four-core Pentium M sharing one L2, for the paper's multicore future work"
	}
	return "unknown configuration"
}

// Platform returns the platform specification a configuration runs on.
func (id ConfigID) Platform() PlatformSpec {
	switch id {
	case OneCPm, TwoCPm, FourCPm:
		return PentiumM()
	case OneLPx, TwoLPx, TwoPPx:
		return Xeon()
	}
	panic(fmt.Sprintf("machine: unknown config %q", id))
}

// Topology describes how many packages, cores and hardware threads a
// configuration exposes.
type Topology struct {
	Packages       int
	CoresPerPkg    int
	ThreadsPerCore int
}

// LogicalCPUs returns the total number of schedulable logical CPUs.
func (t Topology) LogicalCPUs() int {
	return t.Packages * t.CoresPerPkg * t.ThreadsPerCore
}

// Topology returns the hardware layout of a configuration.
func (id ConfigID) Topology() Topology {
	switch id {
	case OneCPm:
		return Topology{Packages: 1, CoresPerPkg: 1, ThreadsPerCore: 1}
	case TwoCPm:
		return Topology{Packages: 1, CoresPerPkg: 2, ThreadsPerCore: 1}
	case OneLPx:
		return Topology{Packages: 1, CoresPerPkg: 1, ThreadsPerCore: 1}
	case TwoLPx:
		return Topology{Packages: 1, CoresPerPkg: 1, ThreadsPerCore: 2}
	case TwoPPx:
		return Topology{Packages: 2, CoresPerPkg: 1, ThreadsPerCore: 1}
	case FourCPm:
		return Topology{Packages: 1, CoresPerPkg: 4, ThreadsPerCore: 1}
	}
	panic(fmt.Sprintf("machine: unknown config %q", id))
}

// SpecsTable renders the paper's Table 1 from the two platform specs; the
// harness prints it for the Table 1 experiment.
func SpecsTable() string {
	pm, xe := PentiumM(), Xeon()
	rows := [][3]string{
		{"Attributes", pm.Name, xe.Name},
		{"Number of CPUs", "1 core and 2 cores", "1 CPU and 2 CPUs"},
		{"Hyperthreading", "No", "Yes"},
		{"CPU Speed", fmt.Sprintf("%.2fGHz", pm.ClockHz/1e9), fmt.Sprintf("%.2fGHz", xe.ClockHz/1e9)},
		{"L1 D Cache", fmt.Sprintf("%dKB", pm.L1D.Size>>10), fmt.Sprintf("%dKB", xe.L1D.Size>>10)},
		{"L2 Cache", fmt.Sprintf("%dMB", pm.L2.Size>>20), fmt.Sprintf("%dMB", xe.L2.Size>>20)},
		{"Frontside Bus", fmt.Sprintf("%.0fMHz", pm.FSBHz/1e6), fmt.Sprintf("%.0fMHz", xe.FSBHz/1e6)},
		{"DRAM Size", fmt.Sprintf("%dGB", pm.DRAMSize>>30), fmt.Sprintf("%dGB", xe.DRAMSize>>30)},
		{"OS Version", pm.OSVersion, xe.OSVersion},
		{"Compiler", pm.Compiler, xe.Compiler},
	}
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%-16s | %-22s | %-22s\n", r[0], r[1], r[2])
	}
	return out
}
