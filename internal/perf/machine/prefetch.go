package machine

import (
	"repro/internal/perf/bus"
	"repro/internal/perf/cache"
	"repro/internal/perf/counters"
)

// prefetcher models the Pentium M "Smart Memory Access" L2 stream
// prefetchers the paper invokes to explain the platform's bus behaviour
// (Section 5.4): on a detected ascending miss stream it issues reads for
// the next lines ahead of demand. Prefetches occupy the bus and count as
// bus transactions for the triggering logical CPU — this is what lifts the
// Pentium M's BTPI to Xeon levels despite its larger L2 — but they hide
// memory latency on streaming access patterns.
type prefetcher struct {
	streams [prefetchStreams]stream
	next    int
}

type stream struct {
	lastLine uint64
	hits     int
	valid    bool
}

const (
	prefetchStreams = 8 // concurrent streams tracked
	prefetchDepth   = 2 // lines fetched ahead once a stream is confirmed
	prefetchConfirm = 2 // consecutive line misses before fetching ahead
)

func newPrefetcher() *prefetcher { return &prefetcher{} }

// onMiss observes an L2 demand miss at addr and, if it extends a known
// ascending stream, prefetches the following lines into the L2.
func (pf *prefetcher) onMiss(p *memPath, now uint64, addr uint64, cs *counters.Set) {
	lineSize := uint64(p.cu.L2.LineSize())
	line := addr / lineSize

	for i := range pf.streams {
		s := &pf.streams[i]
		if !s.valid || line != s.lastLine+1 {
			continue
		}
		s.lastLine = line
		s.hits++
		if s.hits < prefetchConfirm {
			return
		}
		for d := uint64(1); d <= prefetchDepth; d++ {
			target := (line + d) * lineSize
			if p.cu.L2.Probe(target) != cache.Invalid {
				continue
			}
			// A prefetch is a regular memory read on the FSB; its
			// latency is hidden (asynchronous) but its occupancy and
			// transaction count are real.
			p.m.Bus.Transact(now, bus.MemRead)
			cs.Add(counters.BusTxns, 1)
			p.fillL2(now, target, cache.Exclusive, cs)
		}
		return
	}

	// New stream: replace round-robin.
	pf.streams[pf.next] = stream{lastLine: line, hits: 1, valid: true}
	pf.next = (pf.next + 1) % prefetchStreams
}
