package machine

import (
	"repro/internal/perf/bus"
	"repro/internal/perf/cache"
	"repro/internal/perf/counters"
	"repro/internal/perf/tlb"
)

// memPath implements cpu.Memory for one logical CPU: it walks the TLB, the
// core's L1, the package L2, snoops sibling cores and peer packages, and
// charges front-side-bus transactions. It is where the machine's coherence
// protocol lives:
//
//   - The L2 is the coherence point inside a package; dirty lines move
//     between sibling cores through an intervention at L2-interface speed.
//     On the dual-core Pentium M the intervention additionally pushes the
//     dirty line to memory over the FSB (WritebackOnIntervention), which
//     the paper observes as the 2CPm bus-transaction surge in Table 3.
//   - The FSB is the coherence point between packages; dirty lines move
//     as cache-to-cache transfers with full bus occupancy, the mechanism
//     behind the 2PPx loopback collapse in Figure 2.
type memPath struct {
	m    *Machine
	cu   *CoreUnit
	dtlb *tlb.TLB
}

// Access performs one data-word access. It returns the visible stall in
// cycles: overlappable latencies (cache hits, DRAM reads) are discounted
// by the core's memory-level-parallelism factor, while serializing
// latencies (dirty cross-cache transfers, bus queueing) are charged in
// full — a dependent pull of another cache's dirty line cannot be hidden
// by out-of-order execution. Hierarchy events are recorded into cs.
func (p *memPath) Access(now uint64, addr uint64, write bool, cs *counters.Set) float64 {
	m := p.m
	mlp := 1 - m.Spec.Core.MemOverlap
	ov := float64(0)  // overlappable latency
	ser := float64(0) // serializing latency

	if pen, miss := p.dtlb.Access(addr); miss {
		cs.Add(counters.TLBMisses, 1)
		ov += float64(pen)
	}

	// L1 lookup.
	st, upgrade := p.cu.L1.Lookup(addr, write)
	if st != cache.Invalid {
		ov += float64(p.cu.L1.Latency())
		if upgrade {
			// S->M upgrade: kill every other copy in the system.
			p.invalidateElsewhere(now, addr, cs)
		}
		return ov * mlp
	}
	cs.Add(counters.L1Misses, 1)

	// Sibling cores inside the package may own the line dirty; the L2
	// copy, if present, would be stale, so the sibling L1s are probed
	// before the L2 is trusted.
	if dirtyDonor := p.siblingDirty(addr); dirtyDonor != nil {
		if write {
			dirtyDonor.Invalidate(addr)
		} else {
			dirtyDonor.Downgrade(addr)
		}
		if !m.Opts.FreeCoherence {
			ser += m.interventionLat
			if m.Spec.WritebackOnIntervention {
				// Cross-core modified data goes through memory on this
				// platform: the donor pushes the dirty line to DRAM over
				// the FSB and the requester re-reads it — two bus
				// transactions plus a memory latency on the critical
				// path. This is the mechanism behind the paper's 2CPm
				// loopback degradation and bus-transaction surge
				// (Figure 2 / Table 3).
				ser += float64(m.Bus.Transact(now, bus.MemWrite))
				ser += float64(m.Bus.Transact(now, bus.MemRead))
				ov += m.dramLat
				cs.Add(counters.BusTxns, 2)
			}
		}
		fillState := cache.Shared
		if write {
			fillState = cache.Modified
		}
		p.fillL1(now, addr, fillState, cs)
		// Keep the L2 coherent with the transferred line.
		p.fillL2(now, addr, fillState, cs)
		return ov*mlp + ser
	}

	// L2 lookup.
	l2st, l2upgrade := p.cu.L2.Lookup(addr, write)
	if l2st != cache.Invalid {
		ov += float64(p.cu.L2.Latency())
		if l2upgrade || (write && l2st != cache.Modified) {
			p.invalidateElsewhere(now, addr, cs)
		}
		l1st := cache.Shared
		switch {
		case write:
			l1st = cache.Modified
		case l2st == cache.Exclusive || l2st == cache.Modified:
			l1st = cache.Exclusive
		}
		p.fillL1(now, addr, l1st, cs)
		return ov*mlp + ser
	}
	cs.Add(counters.L2Misses, 1)
	ov += float64(p.cu.L2.Latency()) // the miss still pays the lookup

	if p.cu.Pkg.pf != nil {
		p.cu.Pkg.pf.onMiss(p, now, addr, cs)
	}

	// Snoop peer packages (and, in the private-L2 ablation, sibling
	// cores' private L2s).
	owner, dirty := p.findRemote(addr)
	switch {
	case owner != nil && dirty:
		if !m.Opts.FreeCoherence {
			txLat := m.Bus.Transact(now, bus.CacheToCache)
			cs.Add(counters.BusTxns, 1)
			ser += m.c2cLat + float64(txLat)
		}
		if write {
			p.invalidateRemote(addr)
		} else {
			p.downgradeRemote(addr)
		}
	case owner != nil: // clean remote copy
		txLat := m.Bus.Transact(now, bus.MemRead)
		cs.Add(counters.BusTxns, 1)
		ov += m.dramLat
		ser += float64(txLat)
		if write {
			p.invalidateRemote(addr)
		} else {
			p.downgradeRemote(addr)
		}
	default: // memory is the only holder
		txLat := m.Bus.Transact(now, bus.MemRead)
		cs.Add(counters.BusTxns, 1)
		ov += m.dramLat
		ser += float64(txLat)
	}

	fillState := cache.Exclusive
	if write {
		fillState = cache.Modified
	} else if owner != nil {
		fillState = cache.Shared
	}
	p.fillL2(now, addr, fillState, cs)
	p.fillL1(now, addr, fillState, cs)
	return ov*mlp + ser
}

// ContextSwitch implements cpu.Memory: a new address space flushes the
// logical CPU's data TLB.
func (p *memPath) ContextSwitch() { p.dtlb.Flush() }

// fillL1 installs a line in the core's L1, spilling any dirty victim into
// the L2.
func (p *memPath) fillL1(now uint64, addr uint64, st cache.State, cs *counters.Set) {
	v := p.cu.L1.Fill(addr, st)
	if v.Valid && v.WriteBack {
		p.fillL2(now, v.Addr, cache.Modified, cs)
	}
}

// fillL2 installs a line in the package L2, writing any dirty victim back
// to memory over the bus (posted: occupies the bus but does not delay the
// requester).
func (p *memPath) fillL2(now uint64, addr uint64, st cache.State, cs *counters.Set) {
	v := p.cu.L2.Fill(addr, st)
	if v.Valid && v.WriteBack {
		p.m.Bus.Transact(now, bus.MemWrite)
		cs.Add(counters.BusTxns, 1)
	}
}

// siblingDirty returns a sibling core's L1 that holds addr Modified, if
// any (same package, different core).
func (p *memPath) siblingDirty(addr uint64) *cache.Cache {
	for _, cu := range p.cu.Pkg.Cores {
		if cu == p.cu {
			continue
		}
		if cu.L1.Probe(addr) == cache.Modified {
			return cu.L1
		}
	}
	return nil
}

// findRemote scans every cache outside this core's package-level domain
// (peer packages; plus sibling cores' private L2s under the PrivateL2
// ablation) for a copy of addr. It reports whether any copy exists and
// whether a dirty one does.
func (p *memPath) findRemote(addr uint64) (ownerPkg *Package, dirty bool) {
	for _, pkg := range p.m.Packages {
		for _, cu := range pkg.Cores {
			if cu == p.cu {
				continue
			}
			samePkg := cu.Pkg == p.cu.Pkg
			if !samePkg || cu.L2 != p.cu.L2 {
				if st := cu.L2.Probe(addr); st != cache.Invalid {
					if st == cache.Modified {
						return pkg, true
					}
					ownerPkg = pkg
				}
			}
			if !samePkg {
				if st := cu.L1.Probe(addr); st != cache.Invalid {
					if st == cache.Modified {
						return pkg, true
					}
					ownerPkg = pkg
				}
			}
		}
	}
	return ownerPkg, false
}

// invalidateRemote kills every copy of addr outside this core.
func (p *memPath) invalidateRemote(addr uint64) {
	for _, pkg := range p.m.Packages {
		for _, cu := range pkg.Cores {
			if cu == p.cu {
				continue
			}
			cu.L1.Invalidate(addr)
			if cu.L2 != p.cu.L2 {
				cu.L2.Invalidate(addr)
			}
		}
	}
}

// downgradeRemote moves every remote copy of addr to Shared.
func (p *memPath) downgradeRemote(addr uint64) {
	for _, pkg := range p.m.Packages {
		for _, cu := range pkg.Cores {
			if cu == p.cu {
				continue
			}
			cu.L1.Downgrade(addr)
			if cu.L2 != p.cu.L2 {
				cu.L2.Downgrade(addr)
			}
		}
	}
}

// invalidateElsewhere handles a write upgrade: sibling L1s and all remote
// copies die; if any copy lived outside the package an address-phase bus
// transaction is charged, as MESI requires the upgrade to be visible on
// the FSB.
func (p *memPath) invalidateElsewhere(now uint64, addr uint64, cs *counters.Set) {
	crossPackage := false
	for _, pkg := range p.m.Packages {
		for _, cu := range pkg.Cores {
			if cu == p.cu {
				continue
			}
			if cu.L1.Invalidate(addr) != cache.Invalid {
				if cu.Pkg != p.cu.Pkg {
					crossPackage = true
				}
			}
			if cu.L2 != p.cu.L2 && cu.L2.Invalidate(addr) != cache.Invalid {
				if cu.Pkg != p.cu.Pkg {
					crossPackage = true
				}
			}
		}
	}
	if crossPackage && !p.m.Opts.FreeCoherence {
		p.m.Bus.Transact(now, bus.Invalidate)
		cs.Add(counters.BusTxns, 1)
	}
}
