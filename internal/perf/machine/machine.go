package machine

import (
	"fmt"

	"repro/internal/perf/branch"
	"repro/internal/perf/bus"
	"repro/internal/perf/cache"
	"repro/internal/perf/counters"
	"repro/internal/perf/cpu"
	"repro/internal/perf/tlb"
)

// bus transaction kinds re-exported for DMA use without importing bus in
// every caller.
const (
	busMemRead  = bus.MemRead
	busMemWrite = bus.MemWrite
)

// Options toggles model mechanisms for the ablation benchmarks called out
// in DESIGN.md. The zero value is the faithful model.
type Options struct {
	// PrivateL2 splits the dual-core Pentium M's shared L2 into two
	// private halves (ablation: erases the 2CPm shared-cache conflicts).
	PrivateL2 bool
	// PrivatePredictors gives each SMT thread its own branch predictor
	// (ablation: erases the 2LPx misprediction inflation).
	PrivatePredictors bool
	// FreeCoherence makes cross-package and cross-core dirty transfers
	// latency-free and bus-free (ablation: erases the 2PPx loopback
	// collapse).
	FreeCoherence bool
	// NoPrefetch disables the Pentium M stream prefetchers (ablation:
	// erases the elevated Pentium M bus-transaction rates).
	NoPrefetch bool
}

// Machine is one fully wired system under test.
type Machine struct {
	Config ConfigID
	Spec   PlatformSpec
	Topo   Topology
	Opts   Options

	Bus      *bus.Bus
	Packages []*Package
	LCPUs    []*cpu.LCPU

	// converted latencies, in core cycles
	dramLat         float64
	c2cLat          float64
	interventionLat float64

	windowStart []float64 // per-LCPU clock at last ResetWindow
	busyStart   []float64
}

// Package is one processor package (socket): an L2 shared by its cores.
type Package struct {
	Index int
	L2    *cache.Cache
	Cores []*CoreUnit
	pf    *prefetcher
}

// CoreUnit is one physical core with its private L1D and a reference to
// the L2 it reads through (shared with sibling cores in the faithful
// Pentium M model; private in the PrivateL2 ablation).
type CoreUnit struct {
	Core *cpu.Core
	L1   *cache.Cache
	L2   *cache.Cache
	Pkg  *Package
}

// New builds a machine for one of the five configurations.
func New(id ConfigID, opts Options) *Machine {
	spec := id.Platform()
	topo := id.Topology()
	m := &Machine{
		Config:          id,
		Spec:            spec,
		Topo:            topo,
		Opts:            opts,
		dramLat:         spec.DRAMLatencyNs * 1e-9 * spec.ClockHz,
		c2cLat:          spec.C2CLatencyNs * 1e-9 * spec.ClockHz,
		interventionLat: spec.InterventionNs * 1e-9 * spec.ClockHz,
	}
	m.Bus = bus.New(bus.Config{
		DataTxnCycles: uint64(spec.BusDataNs * 1e-9 * spec.ClockHz),
		AddrTxnCycles: uint64(spec.BusAddrNs * 1e-9 * spec.ClockHz),
	})

	lcpuID := 0
	for p := 0; p < topo.Packages; p++ {
		pkg := &Package{Index: p}
		l2cfg := spec.L2
		if opts.PrivateL2 && topo.CoresPerPkg > 1 {
			// Ablation: split the shared L2 into per-core halves. Each
			// core still sees its half through the package structure, so
			// we model it as two packages on the die sharing the FSB.
			l2cfg.Size /= topo.CoresPerPkg
		}
		if !opts.PrivateL2 || topo.CoresPerPkg == 1 {
			pkg.L2 = cache.New(l2cfg)
		}
		if spec.StreamPrefetch && !opts.NoPrefetch {
			pkg.pf = newPrefetcher()
		}
		for c := 0; c < topo.CoresPerPkg; c++ {
			pred := branch.New(spec.Predictor)
			core := cpu.NewCore(spec.Core, pred, spec.Profile, topo.ThreadsPerCore)
			cu := &CoreUnit{Core: core, L1: cache.New(spec.L1D), Pkg: pkg}
			if pkg.L2 != nil {
				cu.L2 = pkg.L2
			} else {
				cu.L2 = cache.New(l2cfg) // private-L2 ablation
			}
			for t, lc := range core.LCPUs {
				lc.ID = lcpuID
				lcpuID++
				lc.Mem = &memPath{
					m:    m,
					cu:   cu,
					dtlb: tlb.New(spec.DTLB),
				}
				if opts.PrivatePredictors && topo.ThreadsPerCore > 1 && t > 0 {
					// Ablation: the second SMT thread predicts through
					// its own tables instead of the core's shared ones.
					lc.PredOverride = branch.New(spec.Predictor)
				}
				m.LCPUs = append(m.LCPUs, lc)
			}
			pkg.Cores = append(pkg.Cores, cu)
		}
		m.Packages = append(m.Packages, pkg)
	}
	m.windowStart = make([]float64, len(m.LCPUs))
	m.busyStart = make([]float64, len(m.LCPUs))
	return m
}

// String identifies the machine in reports.
func (m *Machine) String() string {
	return fmt.Sprintf("%s (%s: %d pkg x %d core x %d thread)",
		m.Config, m.Spec.Name, m.Topo.Packages, m.Topo.CoresPerPkg, m.Topo.ThreadsPerCore)
}

// ResetWindow starts a measurement window: zeroes every logical CPU's
// counters and notes clock positions so Clockticks can be derived at
// CloseWindow. Cache and predictor contents are preserved (hardware
// counter windows do not flush arrays).
func (m *Machine) ResetWindow() {
	for i, lc := range m.LCPUs {
		lc.Counters.Reset()
		m.windowStart[i] = lc.NowF()
		m.busyStart[i] = lc.Busy()
	}
	m.Bus.ResetStats()
	for _, pkg := range m.Packages {
		for _, cu := range pkg.Cores {
			cu.L1.ResetStats()
			cu.L2.ResetStats() // idempotent when shared between cores
		}
	}
}

// CloseWindow ends a measurement window at global cycle end: every logical
// CPU is synced to that time (idle cycles tick like VTune's system-wide
// clocktick sampling) and the Clockticks / BusyCycles counters are set.
func (m *Machine) CloseWindow(end float64) {
	for i, lc := range m.LCPUs {
		lc.SyncTo(end)
		lc.Counters.Add(counters.Clockticks, uint64(lc.NowF()-m.windowStart[i]))
		lc.Counters.Add(counters.BusyCycles, uint64(lc.Busy()-m.busyStart[i]))
	}
}

// SystemCounters merges all logical CPUs' counters, the system-wide view
// the paper's VTune sampling reports.
func (m *Machine) SystemCounters() counters.Set {
	var s counters.Set
	for _, lc := range m.LCPUs {
		s.Merge(lc.Counters)
	}
	return s
}

// MaxNow returns the most advanced logical CPU clock, the machine's notion
// of current time.
func (m *Machine) MaxNow() float64 {
	var max float64
	for _, lc := range m.LCPUs {
		if lc.NowF() > max {
			max = lc.NowF()
		}
	}
	return max
}

// DMAWrite models a NIC writing n bytes at addr into memory: every cache
// holding those lines is invalidated (the CPU will re-read them from DRAM)
// and the bus is occupied by the transfer. DMA transactions are not
// attributed to any logical CPU's bus-transaction counter — they are not
// CPU-initiated — but their occupancy delays CPU bus requests.
func (m *Machine) DMAWrite(now float64, addr uint64, n int) {
	line := uint64(m.Spec.L2.LineSize)
	start := addr &^ (line - 1)
	end := addr + uint64(n)
	for a := start; a < end; a += line {
		for _, pkg := range m.Packages {
			for _, cu := range pkg.Cores {
				cu.L1.Invalidate(a)
				cu.L2.Invalidate(a)
			}
		}
		m.Bus.Transact(uint64(now), busMemWrite)
	}
}

// DMARead models a NIC reading n bytes at addr out of memory (transmit
// path): bus occupancy only; caches keep their copies.
func (m *Machine) DMARead(now float64, addr uint64, n int) {
	line := uint64(m.Spec.L2.LineSize)
	count := (uint64(n) + line - 1) / line
	for i := uint64(0); i < count; i++ {
		m.Bus.Transact(uint64(now), busMemRead)
	}
}

// Seconds converts cycles to wall-clock seconds on this machine.
func (m *Machine) Seconds(cycles float64) float64 {
	return cycles / m.Spec.ClockHz
}

// Cycles converts wall-clock seconds to cycles on this machine.
func (m *Machine) Cycles(seconds float64) float64 {
	return seconds * m.Spec.ClockHz
}
