package codegen

import "testing"

func TestProfiles(t *testing.T) {
	if PentiumM.BranchEvents != 2 {
		t.Fatalf("PM branch events = %d", PentiumM.BranchEvents)
	}
	if Netburst.BranchEvents != 1 {
		t.Fatalf("Netburst branch events = %d", Netburst.BranchEvents)
	}
	if PentiumM.ALUExpand != 1 || Netburst.ALUExpand != 1 {
		t.Fatal("expansion factors drifted from 1:1 retirement")
	}
}

func TestBranchFractionMapsTable5(t *testing.T) {
	// The copy-dominated netperf/FR mix: one abstract branch in five.
	pm := PentiumM.BranchFraction(0, 4, 1)
	xe := Netburst.BranchFraction(0, 4, 1)
	if pm < 0.30 || pm > 0.37 {
		t.Fatalf("PM copy-mix branch freq = %.3f, want ~0.33", pm)
	}
	if xe < 0.17 || xe > 0.22 {
		t.Fatalf("Xeon copy-mix branch freq = %.3f, want ~0.20", xe)
	}
	// XML-heavy mixes dilute branches on both platforms while keeping the
	// ~2x ratio (Table 5's SV/CBR rows).
	pmXML := PentiumM.BranchFraction(10, 2, 1)
	xeXML := Netburst.BranchFraction(10, 2, 1)
	ratio := pmXML / xeXML
	if ratio < 1.7 || ratio > 2.1 {
		t.Fatalf("PM/Xeon branch-freq ratio = %.2f, want ~2", ratio)
	}
}

func TestBranchFractionEmpty(t *testing.T) {
	if PentiumM.BranchFraction(0, 0, 0) != 0 {
		t.Fatal("empty mix not zero")
	}
}
