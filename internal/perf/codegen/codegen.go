// Package codegen defines the per-microarchitecture retirement profiles
// that translate abstract workload micro-ops into performance-counter
// events.
//
// The paper's Table 5 reports that, running the same binaries, "Pentium M
// retires close to double the number of branch instructions relative to
// overall instructions compared to Xeon", and its own throughput/CPI data
// imply near-equal total instruction counts per unit of work on the two
// platforms. Together these mean the branch-frequency gap is a property of
// how the two microarchitectures count retired branch events — the paper
// attributes it to the Pentium M's wide fetch/speculation ("More branch
// instructions are speculatively executed per instruction retired") — not
// of a different instruction mix. The profile therefore models it as a
// branch-event weight: each actual branch retires BranchEvents counted
// branch instructions (2 on the Pentium M line, 1 on Netburst), while ALU
// and memory operations retire 1:1 on both.
//
// A convenient corollary matches Table 6: because BrMPR divides
// mispredictions by retired branch events, the doubled Pentium M branch
// count halves its misprediction ratio before the predictor quality
// difference is even considered.
package codegen

// Profile translates abstract ops into retired-instruction events for one
// microarchitecture.
type Profile struct {
	Name string
	// ALUExpand is retired instructions per abstract ALU operation.
	ALUExpand float64
	// MemExpand is retired instructions per abstract load/store word.
	MemExpand float64
	// BranchEvents is the number of retired branch instructions counted
	// per actual branch.
	BranchEvents int
}

// PentiumM is the Pentium M profile: 1:1 retirement with doubled branch
// event counting from wide speculative fetch.
var PentiumM = Profile{
	Name:         "pentium-m",
	ALUExpand:    1.0,
	MemExpand:    1.0,
	BranchEvents: 2,
}

// Netburst is the Xeon profile: 1:1 retirement, single branch events.
var Netburst = Profile{
	Name:         "netburst",
	ALUExpand:    1.0,
	MemExpand:    1.0,
	BranchEvents: 1,
}

// BranchFraction predicts the retired branch frequency for an abstract
// stream with the given op mix (used by calibration tests): with branch
// weight w and abstract fractions, retired branch frequency is
// w*b / (a*ALUExpand + m*MemExpand + w*b).
func (p Profile) BranchFraction(alu, mem, branches float64) float64 {
	w := float64(p.BranchEvents)
	total := alu*p.ALUExpand + mem*p.MemExpand + branches*w
	if total == 0 {
		return 0
	}
	return branches * w / total
}
