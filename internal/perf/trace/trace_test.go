package trace

import (
	"testing"
	"testing/quick"
)

func TestBufferAccumulation(t *testing.T) {
	b := NewBuffer(16)
	b.ALU(5)
	b.ALU(3) // coalesces with the previous burst
	b.Load(0x100, 4)
	b.Store(0x200, 2)
	b.Branch(0x40, true)
	b.Branch(0x44, false)

	if len(b.Ops) != 5 {
		t.Fatalf("ops = %d, want 5 (ALU bursts coalesce)", len(b.Ops))
	}
	if b.Ops[0].Kind != ALU || b.Ops[0].N != 8 {
		t.Fatalf("coalesced ALU = %+v", b.Ops[0])
	}
	if b.Instr != 8+4+2+2 {
		t.Fatalf("Instr = %d, want 16", b.Instr)
	}
	if b.Loads != 4 || b.Stores != 2 || b.Branches != 2 {
		t.Fatalf("loads/stores/branches = %d/%d/%d", b.Loads, b.Stores, b.Branches)
	}
	b.Reset()
	if len(b.Ops) != 0 || b.Instr != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
}

func TestBufferIgnoresZeroBursts(t *testing.T) {
	b := NewBuffer(4)
	b.ALU(0)
	b.Load(0x0, 0)
	b.Store(0x0, -1)
	if len(b.Ops) != 0 || b.Instr != 0 {
		t.Fatalf("zero bursts recorded: %+v", b.Ops)
	}
}

func TestCountingMatchesBuffer(t *testing.T) {
	check := func(alu uint8, loads, stores uint8, branches uint8) bool {
		b := NewBuffer(64)
		var c Counting
		for _, em := range []Emitter{b, &c} {
			em.ALU(int(alu))
			em.Load(0x1000, int(loads))
			em.Store(0x2000, int(stores))
			for i := 0; i < int(branches); i++ {
				em.Branch(uint64(0x40+i*4), i%2 == 0)
			}
		}
		return b.Instr == c.Instr && b.Loads == c.Loads &&
			b.Stores == c.Stores && b.Branches == c.Branches
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNopIsSilent(t *testing.T) {
	var n Nop
	n.ALU(10)
	n.Load(1, 1)
	n.Store(1, 1)
	n.Branch(1, true)
	// Nothing observable; this test exists to keep the interface honest.
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{ALU: "alu", Load: "load", Store: "store", Branch: "branch", Kind(9): "invalid"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestArenaAllocation(t *testing.T) {
	a := NewArena(0x10000, 1024)
	p1 := a.Alloc(100)
	p2 := a.Alloc(100)
	if p1 != 0x10000 {
		t.Fatalf("first alloc at %#x", p1)
	}
	if p2 != p1+128 { // rounded to 64-byte alignment
		t.Fatalf("second alloc at %#x, want %#x", p2, p1+128)
	}
	if a.Used() != 256 {
		t.Fatalf("Used = %d", a.Used())
	}
}

func TestArenaWrapAround(t *testing.T) {
	a := NewArena(0, 256)
	a.Alloc(128)
	a.Alloc(64)
	p := a.Alloc(128) // does not fit; wraps
	if p != 0 {
		t.Fatalf("wrap alloc at %#x, want 0", p)
	}
}

func TestArenaReset(t *testing.T) {
	a := NewArena(0x500, 512)
	a.Alloc(64)
	a.Reset()
	if p := a.Alloc(64); p != 0x500 {
		t.Fatalf("post-reset alloc at %#x", p)
	}
}

func TestAddressSpaceDisjointProcesses(t *testing.T) {
	s := NewAddressSpace()
	a := s.NewProcess()
	b := s.NewProcess()
	if a.Base() == b.Base() {
		t.Fatal("processes share a base")
	}
	if a.Base()+a.Size() > b.Base() && b.Base() >= a.Base() {
		// b must start beyond a's slot
		if b.Base() < a.Base()+SlotBytes {
			t.Fatalf("slots overlap: %#x vs %#x", a.Base(), b.Base())
		}
	}
}

func TestSubArenaInsideParent(t *testing.T) {
	s := NewAddressSpace()
	p := s.NewProcess()
	sub := SubArena(p, 4096)
	if sub.Base() < p.Base() || sub.Base()+sub.Size() > p.Base()+p.Size() {
		t.Fatalf("sub-arena [%#x,%#x) outside parent [%#x,%#x)",
			sub.Base(), sub.Base()+sub.Size(), p.Base(), p.Base()+p.Size())
	}
}

func TestArenaAlignmentProperty(t *testing.T) {
	a := NewArena(1<<20, 1<<16)
	check := func(sz uint16) bool {
		p := a.Alloc(uint64(sz%2048) + 1)
		return p%AlignBytes == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeRegionStablePCs(t *testing.T) {
	r := NewCodeRegion(64)
	pc1 := r.Site()
	pc2 := r.Site()
	if pc1 == pc2 {
		t.Fatal("sites collide")
	}
	if pc2 != pc1+4 {
		t.Fatalf("sites not adjacent: %#x %#x", pc1, pc2)
	}
	if r.SiteAt(3) != r.SiteAt(3) {
		t.Fatal("SiteAt not stable")
	}
	// SiteAt must stay inside the region's 4 KiB mask.
	if r.SiteAt(1<<20) < r.Base() {
		t.Fatal("SiteAt escaped below region")
	}
}

func TestCodeRegionsDisjoint(t *testing.T) {
	r1 := NewCodeRegion(4096)
	r2 := NewCodeRegion(4096)
	if r2.Base() < r1.Base()+4096 {
		t.Fatalf("regions overlap: %#x %#x", r1.Base(), r2.Base())
	}
}
