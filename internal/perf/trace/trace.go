// Package trace defines the abstract micro-operation stream that connects
// instrumented workload kernels (XML parsing, XPath evaluation, schema
// validation, HTTP handling, TCP copy loops) to the microarchitectural
// performance simulator.
//
// Workload code is real, functionally correct Go code. As it runs it emits
// a stream of Ops describing what an equivalent compiled binary would have
// executed on the simulated processor: ALU bursts, loads and stores with
// synthetic addresses that walk the live buffers, and branches carrying the
// kernel's actual taken/not-taken outcome together with a stable synthetic
// program-counter identity. The simulator consumes the stream to drive
// caches, branch predictors, TLBs, the front-side bus and the pipeline
// model, producing on-chip performance-counter values.
package trace

// Kind classifies a micro-operation.
type Kind uint8

const (
	// ALU is a burst of N generic integer/logical operations that hit no
	// memory and contain no control flow.
	ALU Kind = iota
	// Load is a burst of N sequential data-cache reads starting at Addr,
	// one per word (WordBytes apart).
	Load
	// Store is a burst of N sequential data-cache writes starting at Addr.
	Store
	// Branch is a single conditional branch at synthetic PC Addr with
	// outcome Taken.
	Branch
)

// WordBytes is the granularity of a single Load/Store micro-operation.
// Byte-level kernels amortize their accesses to one memory micro-op per
// word, which matches how compiled string/buffer code touches memory.
const WordBytes = 8

// Op is one micro-operation (or a homogeneous burst of them).
type Op struct {
	Addr  uint64 // data address (Load/Store) or synthetic PC (Branch)
	N     uint32 // burst length for ALU/Load/Store; 1 for Branch
	Kind  Kind
	Taken bool // branch outcome (Branch only)
}

// String returns a short human-readable form, used by tests and debugging.
func (k Kind) String() string {
	switch k {
	case ALU:
		return "alu"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	}
	return "invalid"
}

// Emitter receives micro-operations from instrumented kernels.
//
// Emitters must tolerate N == 0 (a no-op). Addresses are synthetic: they
// come from an Arena and never alias real Go memory.
type Emitter interface {
	// ALU records a burst of n plain ALU operations.
	ALU(n int)
	// Load records n sequential word loads starting at addr.
	Load(addr uint64, n int)
	// Store records n sequential word stores starting at addr.
	Store(addr uint64, n int)
	// Branch records one conditional branch at synthetic PC pc with the
	// given actual outcome.
	Branch(pc uint64, taken bool)
}

// Nop is an Emitter that discards everything. It lets the XML, XPath, XSD
// and HTTP packages be used as plain libraries with zero instrumentation
// overhead beyond the interface calls.
type Nop struct{}

func (Nop) ALU(int)             {}
func (Nop) Load(uint64, int)    {}
func (Nop) Store(uint64, int)   {}
func (Nop) Branch(uint64, bool) {}

var _ Emitter = Nop{}

// Buffer is an Emitter that accumulates Ops in memory. The simulation
// engine hands a Buffer to a workload kernel, then feeds the accumulated
// stream through a logical CPU. Buffers are reused via Reset to avoid
// allocation in steady state.
type Buffer struct {
	Ops []Op

	// Stats accumulated on the fly so callers can size work without
	// re-scanning the op slice.
	Instr    uint64 // total micro-ops represented (bursts expanded)
	Loads    uint64
	Stores   uint64
	Branches uint64
}

// NewBuffer returns a Buffer with the given initial op capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{Ops: make([]Op, 0, capacity)}
}

// Reset empties the buffer for reuse, retaining capacity.
func (b *Buffer) Reset() {
	b.Ops = b.Ops[:0]
	b.Instr, b.Loads, b.Stores, b.Branches = 0, 0, 0, 0
}

// ALU implements Emitter. Consecutive ALU bursts coalesce.
func (b *Buffer) ALU(n int) {
	if n <= 0 {
		return
	}
	b.Instr += uint64(n)
	if last := len(b.Ops) - 1; last >= 0 && b.Ops[last].Kind == ALU {
		b.Ops[last].N += uint32(n)
		return
	}
	b.Ops = append(b.Ops, Op{Kind: ALU, N: uint32(n)})
}

// Load implements Emitter.
func (b *Buffer) Load(addr uint64, n int) {
	if n <= 0 {
		return
	}
	b.Instr += uint64(n)
	b.Loads += uint64(n)
	b.Ops = append(b.Ops, Op{Kind: Load, Addr: addr, N: uint32(n)})
}

// Store implements Emitter.
func (b *Buffer) Store(addr uint64, n int) {
	if n <= 0 {
		return
	}
	b.Instr += uint64(n)
	b.Stores += uint64(n)
	b.Ops = append(b.Ops, Op{Kind: Store, Addr: addr, N: uint32(n)})
}

// Branch implements Emitter.
func (b *Buffer) Branch(pc uint64, taken bool) {
	b.Instr++
	b.Branches++
	b.Ops = append(b.Ops, Op{Kind: Branch, Addr: pc, N: 1, Taken: taken})
}

var _ Emitter = (*Buffer)(nil)

// Counting is an Emitter that tallies operation counts without retaining
// the stream. Useful in tests and for sizing workloads.
type Counting struct {
	Instr, Loads, Stores, Branches, Taken uint64
}

func (c *Counting) ALU(n int) {
	if n > 0 {
		c.Instr += uint64(n)
	}
}
func (c *Counting) Load(_ uint64, n int) {
	if n > 0 {
		c.Instr += uint64(n)
		c.Loads += uint64(n)
	}
}
func (c *Counting) Store(_ uint64, n int) {
	if n > 0 {
		c.Instr += uint64(n)
		c.Stores += uint64(n)
	}
}
func (c *Counting) Branch(_ uint64, taken bool) {
	c.Instr++
	c.Branches++
	if taken {
		c.Taken++
	}
}

var _ Emitter = (*Counting)(nil)
