package trace

// Arena hands out synthetic data addresses for simulated buffers. Every
// simulated software thread (or process) owns one or more arenas carved out
// of a flat 64-bit synthetic address space; the addresses feed the cache,
// TLB and bus models but never alias real Go memory.
//
// Two allocation modes mirror how the real applications use memory:
//
//   - Alloc      — bump allocation of fresh addresses (malloc of a new
//     message buffer: cold lines, no temporal reuse).
//   - AllocReuse — a recycled region of fixed size (a per-worker scratch
//     heap for DOM nodes or parser state: warm lines, temporal reuse).
type Arena struct {
	base  uint64
	limit uint64
	next  uint64
}

// AlignBytes is the allocation alignment; it matches a cache line so that
// distinct buffers never produce false line sharing.
const AlignBytes = 64

// NewArena carves an arena of size bytes starting at base.
func NewArena(base, size uint64) *Arena {
	return &Arena{base: base, limit: base + size, next: base}
}

// Base returns the arena's first address.
func (a *Arena) Base() uint64 { return a.base }

// Size returns the arena's capacity in bytes.
func (a *Arena) Size() uint64 { return a.limit - a.base }

// Used returns the number of bytes allocated since creation or last Reset.
func (a *Arena) Used() uint64 { return a.next - a.base }

// Alloc returns the synthetic base address of a fresh region of the given
// size. When the arena is exhausted it wraps around, which models a real
// allocator recycling freed virtual pages after the working set has left
// the caches.
func (a *Arena) Alloc(size uint64) uint64 {
	size = (size + AlignBytes - 1) &^ (AlignBytes - 1)
	if a.next+size > a.limit {
		a.next = a.base
	}
	addr := a.next
	a.next += size
	return addr
}

// Reset rewinds the arena so subsequent Allocs reuse addresses from the
// start. Used to model per-request scratch heaps that are recycled.
func (a *Arena) Reset() { a.next = a.base }

// AddressSpace partitions the global synthetic address space among
// simulated processes so their working sets never collide. Each process
// receives a contiguous 1 GiB slot.
type AddressSpace struct {
	nextSlot uint64
}

// SlotBytes is the size of one process address-space slot.
const SlotBytes = 1 << 30

// NewAddressSpace returns an empty synthetic address space. The first slot
// starts above the zero page so a zero address is never valid.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextSlot: 1}
}

// NewProcess reserves the next process slot and returns an arena covering
// it.
func (s *AddressSpace) NewProcess() *Arena {
	base := s.nextSlot * SlotBytes
	s.nextSlot++
	return NewArena(base, SlotBytes)
}

// SubArena carves a child arena of the given size out of a parent arena.
func SubArena(parent *Arena, size uint64) *Arena {
	base := parent.Alloc(size)
	return NewArena(base, size)
}

// CodeRegion hands out stable synthetic program counters for branch sites.
// Each instrumented kernel reserves a region at init time and derives the
// PCs of its branch sites from stable offsets, so the branch predictor sees
// the same site identity across messages, threads and runs — exactly like
// the text segment of a compiled binary.
type CodeRegion struct {
	base uint64
	next uint64
}

// codeSegmentBase places synthetic code far above any data slot.
const codeSegmentBase = uint64(0x7f00_0000_0000)

// codeAlloc is the global bump pointer for code regions. Regions are
// reserved at package-init time only, so no locking is needed.
var codeAlloc = codeSegmentBase

// NewCodeRegion reserves a code region of the given byte size. It is meant
// to be called from package init or var initialization.
func NewCodeRegion(size uint64) *CodeRegion {
	r := &CodeRegion{base: codeAlloc, next: codeAlloc}
	codeAlloc += (size + 4095) &^ 4095
	return r
}

// Site reserves one branch-site PC within the region. Like NewCodeRegion it
// is intended for init-time use.
func (r *CodeRegion) Site() uint64 {
	pc := r.next
	r.next += 4
	return pc
}

// SiteAt returns the PC at a fixed offset within the region, for kernels
// that index their branch sites dynamically (for example one PC per parser
// state). The offset is clamped into the region by masking, so a dynamic
// index can never walk outside the reserved code bytes.
func (r *CodeRegion) SiteAt(offset uint64) uint64 {
	return r.base + (offset*4)&0xfff
}

// Base returns the region's first PC.
func (r *CodeRegion) Base() uint64 { return r.base }
