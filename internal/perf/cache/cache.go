// Package cache implements the set-associative cache model used by the
// performance simulator: configurable size, line size and associativity,
// true-LRU replacement, write-back/write-allocate policy, and a MESI-lite
// (M/S/I) coherence state per line so the machine model can charge
// cache-to-cache transfers and invalidations over the front-side bus.
//
// The caches are passive: they answer lookups and accept fills and probes.
// The coherence protocol itself (who snoops whom, what a transfer costs)
// lives in internal/perf/machine, which mirrors how a real memory subsystem
// separates arrays from the protocol engine.
package cache

import "fmt"

// State is the coherence state of a cached line (MESI).
type State uint8

const (
	// Invalid means the line is not present.
	Invalid State = iota
	// Shared means the line is present, clean, and may also be present in
	// peer caches.
	Shared
	// Exclusive means the line is present, clean, and no peer holds it; a
	// write upgrades it to Modified silently (no bus transaction).
	Exclusive
	// Modified means the line is present, dirty, and exclusively owned.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Config describes one cache array.
type Config struct {
	Name     string // for reports, e.g. "L1D" or "L2"
	Size     int    // total bytes; must be a multiple of LineSize*Assoc
	LineSize int    // bytes per line; power of two
	Assoc    int    // ways per set
	Latency  int    // hit latency in CPU cycles
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a positive power of two", c.Name, c.LineSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache %s: associativity %d is not positive", c.Name, c.Assoc)
	}
	if c.Size <= 0 || c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d is not a multiple of line*assoc = %d", c.Name, c.Size, c.LineSize*c.Assoc)
	}
	sets := c.Size / (c.LineSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache events. All counts are in line-granularity accesses.
type Stats struct {
	Accesses    uint64 // lookups
	Misses      uint64 // lookups that did not find the line
	Evictions   uint64 // lines displaced by fills
	WriteBacks  uint64 // displaced lines that were Modified
	Invalidates uint64 // lines killed by coherence probes
	Downgrades  uint64 // M->S transitions from coherence probes
}

// Cache is one cache array.
type Cache struct {
	cfg       Config
	sets      []set
	setMask   uint64
	lineShift uint
	stats     Stats
}

type line struct {
	tag   uint64
	state State
	lru   uint32 // higher = more recently used
}

type set struct {
	lines []line
	clock uint32
}

// New builds a cache from cfg. It panics on an invalid configuration,
// which is an init-time programming error, not a runtime condition.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	c := &Cache{
		cfg:     cfg,
		sets:    make([]set, nsets),
		setMask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]line, cfg.Assoc)
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents,
// mirroring how performance-counter measurement windows work on hardware.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineSize) - 1)
}

// LineSize returns the configured line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// Latency returns the configured hit latency in cycles.
func (c *Cache) Latency() int { return c.cfg.Latency }

func (c *Cache) locate(addr uint64) (*set, uint64) {
	lineAddr := addr >> c.lineShift
	s := &c.sets[lineAddr&c.setMask]
	tag := lineAddr >> 0 // full line address as tag keeps probes trivial
	return s, tag
}

// Lookup checks for addr. On a hit it refreshes LRU, applies the write
// upgrade (S->M reported via upgrade=true so the protocol engine can charge
// a bus invalidate; E->M is silent), and returns the pre-upgrade state.
// On a miss it returns Invalid. Lookup never allocates; use Fill for that.
func (c *Cache) Lookup(addr uint64, write bool) (st State, upgrade bool) {
	c.stats.Accesses++
	s, tag := c.locate(addr)
	for i := range s.lines {
		ln := &s.lines[i]
		if ln.state != Invalid && ln.tag == tag {
			s.clock++
			ln.lru = s.clock
			st = ln.state
			if write {
				upgrade = ln.state == Shared
				ln.state = Modified
			}
			return st, upgrade
		}
	}
	c.stats.Misses++
	return Invalid, false
}

// Victim describes a line displaced by a Fill.
type Victim struct {
	Addr      uint64 // line address of the displaced line
	WriteBack bool   // the victim was Modified and must go to memory
	Valid     bool   // a real line was displaced (the set was full)
}

// Fill installs addr with the given state, evicting the LRU line if the
// set is full. The displaced line, if any, is returned so the protocol
// engine can charge a write-back bus transaction.
func (c *Cache) Fill(addr uint64, st State) Victim {
	if st == Invalid {
		return Victim{}
	}
	s, tag := c.locate(addr)
	victimIdx := 0
	var victimLRU uint32 = ^uint32(0)
	for i := range s.lines {
		ln := &s.lines[i]
		if ln.state != Invalid && ln.tag == tag {
			// Already present (a racing fill in the protocol engine);
			// just raise the state if needed and refresh LRU.
			s.clock++
			ln.lru = s.clock
			if st > ln.state {
				ln.state = st
			}
			return Victim{}
		}
		if ln.state == Invalid {
			s.clock++
			*ln = line{tag: tag, state: st, lru: s.clock}
			return Victim{}
		}
		if ln.lru < victimLRU {
			victimLRU = ln.lru
			victimIdx = i
		}
	}
	v := &s.lines[victimIdx]
	victim := Victim{
		Addr:      v.tag << c.lineShift,
		WriteBack: v.state == Modified,
		Valid:     true,
	}
	c.stats.Evictions++
	if victim.WriteBack {
		c.stats.WriteBacks++
	}
	s.clock++
	*v = line{tag: tag, state: st, lru: s.clock}
	return victim
}

// Probe is a coherence lookup from a peer: it reports the line's state
// without disturbing LRU (snoops do not constitute a use).
func (c *Cache) Probe(addr uint64) State {
	s, tag := c.locate(addr)
	for i := range s.lines {
		ln := &s.lines[i]
		if ln.state != Invalid && ln.tag == tag {
			return ln.state
		}
	}
	return Invalid
}

// Invalidate kills the line if present, returning its prior state so the
// protocol engine knows whether a dirty transfer was implied.
func (c *Cache) Invalidate(addr uint64) State {
	s, tag := c.locate(addr)
	for i := range s.lines {
		ln := &s.lines[i]
		if ln.state != Invalid && ln.tag == tag {
			st := ln.state
			ln.state = Invalid
			c.stats.Invalidates++
			return st
		}
	}
	return Invalid
}

// Downgrade moves a Modified or Exclusive line to Shared (a read snoop
// hit), returning true if the line was present and dirty (Modified), which
// implies the snooper must receive the data from this cache.
func (c *Cache) Downgrade(addr uint64) bool {
	s, tag := c.locate(addr)
	for i := range s.lines {
		ln := &s.lines[i]
		if ln.tag == tag && (ln.state == Modified || ln.state == Exclusive) {
			dirty := ln.state == Modified
			ln.state = Shared
			if dirty {
				c.stats.Downgrades++
			}
			return dirty
		}
	}
	return false
}

// Flush invalidates the entire cache (used between measurement runs so
// experiments start cold, like a freshly exec'd process).
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i].lines {
			c.sets[i].lines[j] = line{}
		}
		c.sets[i].clock = 0
	}
}

// Occupancy returns the number of valid lines, for tests and reports.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].lines {
			if c.sets[i].lines[j].state != Invalid {
				n++
			}
		}
	}
	return n
}
