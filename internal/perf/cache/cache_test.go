package cache

import (
	"testing"
	"testing/quick"
)

func testCache(size, line, assoc int) *Cache {
	return New(Config{Name: "t", Size: size, LineSize: line, Assoc: assoc, Latency: 3})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Size: 1024, LineSize: 0, Assoc: 2},
		{Size: 1024, LineSize: 48, Assoc: 2},       // not power of two
		{Size: 1000, LineSize: 64, Assoc: 2},       // not multiple
		{Size: 1024, LineSize: 64, Assoc: 0},       // bad assoc
		{Size: 64 * 2 * 3, LineSize: 64, Assoc: 2}, // sets not power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	good := Config{Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := testCache(1024, 64, 2)
	if st, _ := c.Lookup(0x100, false); st != Invalid {
		t.Fatal("cold lookup hit")
	}
	c.Fill(0x100, Exclusive)
	if st, _ := c.Lookup(0x100, false); st != Exclusive {
		t.Fatalf("post-fill state = %v", st)
	}
	// Same line, different word.
	if st, _ := c.Lookup(0x108, false); st == Invalid {
		t.Fatal("same-line word missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWriteUpgrades(t *testing.T) {
	c := testCache(1024, 64, 2)
	c.Fill(0x40, Shared)
	st, upgrade := c.Lookup(0x40, true)
	if st != Shared || !upgrade {
		t.Fatalf("S write: st=%v upgrade=%v", st, upgrade)
	}
	if c.Probe(0x40) != Modified {
		t.Fatal("line not Modified after upgrade")
	}

	c.Fill(0x80, Exclusive)
	st, upgrade = c.Lookup(0x80, true)
	if st != Exclusive || upgrade {
		t.Fatalf("E write must be silent: st=%v upgrade=%v", st, upgrade)
	}
	if c.Probe(0x80) != Modified {
		t.Fatal("E line not Modified after write")
	}
}

func TestLRUEviction(t *testing.T) {
	c := testCache(2*64, 64, 2) // one set, two ways
	c.Fill(0x0, Exclusive)
	c.Fill(0x40000, Exclusive)
	c.Lookup(0x0, false) // touch 0x0: now 0x40000 is LRU
	v := c.Fill(0x80000, Exclusive)
	if !v.Valid || v.Addr != 0x40000 {
		t.Fatalf("victim = %+v, want 0x40000", v)
	}
	if c.Probe(0x0) == Invalid {
		t.Fatal("recently used line evicted")
	}
}

func TestDirtyVictimWriteBack(t *testing.T) {
	c := testCache(2*64, 64, 2)
	c.Fill(0x0, Modified)
	c.Fill(0x40000, Exclusive)
	c.Lookup(0x40000, false)
	c.Lookup(0x40000, false) // 0x0 is LRU and dirty
	v := c.Fill(0x80000, Exclusive)
	if !v.WriteBack || v.Addr != 0x0 {
		t.Fatalf("dirty victim = %+v", v)
	}
	if c.Stats().WriteBacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().WriteBacks)
	}
}

func TestProbeDoesNotTouchLRU(t *testing.T) {
	c := testCache(2*64, 64, 2)
	c.Fill(0x0, Exclusive)
	c.Fill(0x40000, Exclusive) // 0x0 is LRU
	c.Probe(0x0)               // snoop must not refresh
	v := c.Fill(0x80000, Exclusive)
	if v.Addr != 0x0 {
		t.Fatalf("probe refreshed LRU: victim %+v", v)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := testCache(1024, 64, 2)
	c.Fill(0x40, Modified)
	if dirty := c.Downgrade(0x40); !dirty {
		t.Fatal("downgrade of M not reported dirty")
	}
	if c.Probe(0x40) != Shared {
		t.Fatal("downgrade did not leave Shared")
	}
	if st := c.Invalidate(0x40); st != Shared {
		t.Fatalf("invalidate returned %v", st)
	}
	if c.Probe(0x40) != Invalid {
		t.Fatal("line survives invalidate")
	}
	if st := c.Invalidate(0x40); st != Invalid {
		t.Fatal("double invalidate returned a state")
	}
	// Downgrade of clean-exclusive is not a dirty supply.
	c.Fill(0x80, Exclusive)
	if dirty := c.Downgrade(0x80); dirty {
		t.Fatal("E downgrade reported dirty")
	}
}

func TestFlushAndOccupancy(t *testing.T) {
	c := testCache(4096, 64, 4)
	for i := 0; i < 10; i++ {
		c.Fill(uint64(i*64), Shared)
	}
	if c.Occupancy() != 10 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Fatal("flush left lines")
	}
}

func TestFillExistingRaisesState(t *testing.T) {
	c := testCache(1024, 64, 2)
	c.Fill(0x40, Shared)
	c.Fill(0x40, Modified)
	if c.Probe(0x40) != Modified {
		t.Fatal("re-fill did not raise state")
	}
	c.Fill(0x40, Shared) // must not lower
	if c.Probe(0x40) != Modified {
		t.Fatal("re-fill lowered state")
	}
}

// Property: the cache never holds more lines than its capacity, and a
// line just filled is always present.
func TestCapacityInvariant(t *testing.T) {
	c := testCache(4096, 64, 4)
	capacity := 4096 / 64
	check := func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := uint64(a) * 64
			c.Fill(addr, Exclusive)
			if c.Probe(addr) == Invalid {
				return false
			}
			if c.Occupancy() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: lookups after a fill hit for any address within the line.
func TestLineGranularityProperty(t *testing.T) {
	c := testCache(32<<10, 64, 8)
	check := func(base uint32, off uint8) bool {
		addr := uint64(base) << 6
		c.Fill(addr, Exclusive)
		st, _ := c.Lookup(addr+uint64(off%64), false)
		return st != Invalid
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(9): "?"} {
		if st.String() != want {
			t.Errorf("%d = %q want %q", st, st.String(), want)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	New(Config{Size: 100, LineSize: 64, Assoc: 2})
}
