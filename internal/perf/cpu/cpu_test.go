package cpu

import (
	"testing"

	"repro/internal/perf/branch"
	"repro/internal/perf/codegen"
	"repro/internal/perf/counters"
	"repro/internal/perf/trace"
)

// flatMemory is a stub hierarchy with a fixed stall per access.
type flatMemory struct {
	stall    float64
	accesses int
	flushes  int
}

func (f *flatMemory) Access(_ uint64, _ uint64, _ bool, _ *counters.Set) float64 {
	f.accesses++
	return f.stall
}
func (f *flatMemory) ContextSwitch() { f.flushes++ }

func testCore(width float64, smt int, profile codegen.Profile) (*Core, *flatMemory) {
	cfg := Config{
		Name: "test", ClockHz: 1e9, IssueWidth: width,
		MispredictPenalty: 10, MemOverlap: 0.5, SMTOverhead: 1.0,
	}
	pred := branch.New(branch.Config{PatternBits: 10, HistoryBits: 4})
	core := NewCore(cfg, pred, profile, smt)
	mem := &flatMemory{}
	for _, lc := range core.LCPUs {
		lc.Mem = mem
	}
	return core, mem
}

func TestALURetirement(t *testing.T) {
	core, _ := testCore(1.0, 1, codegen.PentiumM)
	lc := core.LCPUs[0]
	lc.SetRunning(true)
	lc.Execute([]trace.Op{{Kind: trace.ALU, N: 100}})
	if got := lc.Counters.Get(counters.InstrRetired); got != 100 {
		t.Fatalf("retired %d, want 100", got)
	}
	if lc.Now() != 100 {
		t.Fatalf("cycles %d, want 100 at width 1", lc.Now())
	}
}

func TestMemoryAccessAccounting(t *testing.T) {
	core, mem := testCore(1.0, 1, codegen.PentiumM)
	mem.stall = 7
	lc := core.LCPUs[0]
	lc.SetRunning(true)
	lc.Execute([]trace.Op{{Kind: trace.Load, Addr: 0x1000, N: 4}})
	if mem.accesses != 4 {
		t.Fatalf("accesses = %d", mem.accesses)
	}
	if got := lc.Counters.Get(counters.DataMemAccesses); got != 4 {
		t.Fatalf("counter = %d", got)
	}
	// 4 instructions at width 1 + 4 stalls of 7.
	if lc.NowF() < 31.9 || lc.NowF() > 32.1 {
		t.Fatalf("cycles %.1f, want 32", lc.NowF())
	}
}

func TestBranchEventsPerProfile(t *testing.T) {
	for _, tc := range []struct {
		profile codegen.Profile
		events  uint64
	}{
		{codegen.PentiumM, 2},
		{codegen.Netburst, 1},
	} {
		core, _ := testCore(1.0, 1, tc.profile)
		lc := core.LCPUs[0]
		lc.SetRunning(true)
		lc.Execute([]trace.Op{{Kind: trace.Branch, Addr: 0x40, N: 1, Taken: true}})
		if got := lc.Counters.Get(counters.BranchRetired); got != tc.events {
			t.Errorf("%s: branch events = %d, want %d", tc.profile.Name, got, tc.events)
		}
		if got := lc.Counters.Get(counters.InstrRetired); got != tc.events {
			t.Errorf("%s: instr = %d, want %d", tc.profile.Name, got, tc.events)
		}
	}
}

func TestMispredictPenalty(t *testing.T) {
	core, _ := testCore(1.0, 1, codegen.Netburst)
	lc := core.LCPUs[0]
	lc.SetRunning(true)
	// Train an always-taken branch, then flip the outcome.
	ops := make([]trace.Op, 50)
	for i := range ops {
		ops[i] = trace.Op{Kind: trace.Branch, Addr: 0x80, N: 1, Taken: true}
	}
	lc.Execute(ops)
	before := lc.NowF()
	missBefore := lc.Counters.Get(counters.BranchMispredict)
	lc.Execute([]trace.Op{{Kind: trace.Branch, Addr: 0x80, N: 1, Taken: false}})
	if got := lc.Counters.Get(counters.BranchMispredict); got != missBefore+1 {
		t.Fatalf("mispredict not counted")
	}
	delta := lc.NowF() - before
	if delta < 10 { // 1 issue cycle + 10 penalty
		t.Fatalf("flush cost %.1f cycles", delta)
	}
}

func TestSMTIssueSharing(t *testing.T) {
	core, _ := testCore(1.0, 2, codegen.Netburst)
	a, b := core.LCPUs[0], core.LCPUs[1]
	a.SetRunning(true)
	a.Execute([]trace.Op{{Kind: trace.ALU, N: 100}})
	solo := a.NowF()

	b.SetRunning(true) // sibling becomes active
	a.Execute([]trace.Op{{Kind: trace.ALU, N: 100}})
	shared := a.NowF() - solo
	if shared <= solo*1.5 {
		t.Fatalf("co-running issue cost %.1f not ~2x solo %.1f", shared, solo)
	}
}

func TestSMTStaticPartition(t *testing.T) {
	cfg := Config{Name: "s", ClockHz: 1e9, IssueWidth: 1.0, MispredictPenalty: 10, MemOverlap: 0.5, SMTOverhead: 1.0, SMTStatic: 1.5}
	pred := branch.New(branch.Config{PatternBits: 10, HistoryBits: 4})
	core := NewCore(cfg, pred, codegen.Netburst, 2)
	mem := &flatMemory{}
	core.LCPUs[0].Mem = mem
	lc := core.LCPUs[0]
	lc.SetRunning(true)
	lc.Execute([]trace.Op{{Kind: trace.ALU, N: 100}})
	if lc.NowF() < 149 || lc.NowF() > 151 {
		t.Fatalf("static-partitioned cycles %.1f, want 150", lc.NowF())
	}
}

func TestPredOverride(t *testing.T) {
	core, _ := testCore(1.0, 2, codegen.Netburst)
	lc := core.LCPUs[1]
	lc.PredOverride = branch.New(branch.Config{PatternBits: 10, HistoryBits: 4})
	lc.SetRunning(true)
	lc.Execute([]trace.Op{{Kind: trace.Branch, Addr: 0x99, N: 1, Taken: true}})
	if core.Pred.Stats().Lookups != 0 {
		t.Fatal("shared predictor consulted despite override")
	}
	if lc.PredOverride.Stats().Lookups != 1 {
		t.Fatal("override predictor not consulted")
	}
}

func TestContextSwitch(t *testing.T) {
	core, mem := testCore(1.0, 1, codegen.PentiumM)
	lc := core.LCPUs[0]
	before := lc.NowF()
	lc.ContextSwitch(true)
	if lc.NowF()-before != ContextSwitchCost {
		t.Fatal("switch cost wrong")
	}
	if mem.flushes != 0 {
		t.Fatal("same-space switch flushed TLB")
	}
	lc.ContextSwitch(false)
	if mem.flushes != 1 {
		t.Fatal("cross-space switch did not flush TLB")
	}
}

func TestSyncToAndBusy(t *testing.T) {
	core, _ := testCore(1.0, 1, codegen.PentiumM)
	lc := core.LCPUs[0]
	lc.SetRunning(true)
	lc.Execute([]trace.Op{{Kind: trace.ALU, N: 50}})
	busyBefore := lc.Busy()
	lc.SyncTo(10_000) // idle jump
	if lc.Busy() != busyBefore {
		t.Fatal("idle time counted as busy")
	}
	if lc.Now() != 10_000 {
		t.Fatalf("now = %d", lc.Now())
	}
	lc.SyncTo(5) // backwards: no-op
	if lc.Now() != 10_000 {
		t.Fatal("SyncTo moved the clock backwards")
	}
}

func TestRunningToggle(t *testing.T) {
	core, _ := testCore(1.0, 2, codegen.Netburst)
	a, b := core.LCPUs[0], core.LCPUs[1]
	a.SetRunning(true)
	a.SetRunning(true) // idempotent
	if core.active != 1 {
		t.Fatalf("active = %d", core.active)
	}
	b.SetRunning(true)
	if core.active != 2 {
		t.Fatalf("active = %d", core.active)
	}
	a.SetRunning(false)
	b.SetRunning(false)
	if core.active != 0 {
		t.Fatalf("active = %d", core.active)
	}
	if a.Running() {
		t.Fatal("running flag stuck")
	}
}

func TestFractionalRetirementExact(t *testing.T) {
	// Width 3: per-instruction cost 1/3 cycle; 300 instructions must land
	// on exactly 100 cycles (no drift from fractional accumulation).
	core, _ := testCore(3.0, 1, codegen.PentiumM)
	lc := core.LCPUs[0]
	lc.SetRunning(true)
	for i := 0; i < 300; i++ {
		lc.Execute([]trace.Op{{Kind: trace.ALU, N: 1}})
	}
	if lc.NowF() < 99.9 || lc.NowF() > 100.1 {
		t.Fatalf("cycles %.3f, want 100", lc.NowF())
	}
	if lc.Counters.Get(counters.InstrRetired) != 300 {
		t.Fatalf("retired %d", lc.Counters.Get(counters.InstrRetired))
	}
}
