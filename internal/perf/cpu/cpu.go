// Package cpu implements the pipeline model of the simulated processors:
// logical CPUs that consume micro-op streams, physical cores that share
// issue bandwidth between SMT siblings, misprediction flushes, and memory
// stall accounting. It is deliberately a performance model, not a
// functional one — functional execution happens in the real Go workload
// code, which emits the op streams this package consumes.
package cpu

import (
	"repro/internal/perf/branch"
	"repro/internal/perf/codegen"
	"repro/internal/perf/counters"
	"repro/internal/perf/trace"
)

// Config describes one physical core's pipeline.
type Config struct {
	Name string
	// ClockHz is the core frequency; it converts cycles to wall time.
	ClockHz float64
	// IssueWidth is the peak retired instructions per cycle when a single
	// thread owns the core.
	IssueWidth float64
	// MispredictPenalty is the pipeline-flush cost in cycles. Netburst's
	// 31-stage pipeline pays roughly 2.5x the Pentium M's 12-stage one.
	MispredictPenalty float64
	// MemOverlap is the fraction of beyond-L1 memory latency hidden by
	// out-of-order execution and memory-level parallelism (0..1).
	MemOverlap float64
	// SMTOverhead multiplies per-instruction issue cost when both SMT
	// siblings are active, on top of the fair split of issue slots; it
	// models partitioned queues and replay interference.
	SMTOverhead float64
	// SMTStatic multiplies issue cost whenever Hyperthreading is enabled
	// (two logical CPUs exist on the core) even if the sibling is idle:
	// Netburst statically partitions its queues when HT is on, which is
	// why the paper's 2LPx configuration differs from 1LPx (HT disabled
	// in BIOS) even for a single busy thread.
	SMTStatic float64
}

// Memory is the interface to the cache/bus hierarchy (implemented by
// internal/perf/machine). Access performs one data-word access at global
// cycle now, records hierarchy events into cs, and returns the *visible*
// stall in cycles — the hierarchy applies the core's memory-level
// parallelism discount to overlappable latencies (cache and DRAM) and
// charges serializing latencies (cross-cache transfers, bus queueing) in
// full.
type Memory interface {
	Access(now uint64, addr uint64, write bool, cs *counters.Set) float64
	// ContextSwitch informs the hierarchy that the logical CPU switched
	// to a different address space (TLB flush).
	ContextSwitch()
}

// Core is one physical core: up to two logical CPUs sharing the pipeline,
// the branch predictor, and (via the machine wiring) the L1 cache.
type Core struct {
	Cfg     Config
	Pred    *branch.Predictor
	Profile codegen.Profile
	LCPUs   []*LCPU

	active int // logical CPUs currently executing a software thread
}

// NewCore builds a core with n logical CPUs (n == 2 models Hyperthreading).
func NewCore(cfg Config, pred *branch.Predictor, profile codegen.Profile, n int) *Core {
	c := &Core{Cfg: cfg, Pred: pred, Profile: profile}
	for i := 0; i < n; i++ {
		lc := &LCPU{Core: c, SMTIndex: i}
		c.LCPUs = append(c.LCPUs, lc)
	}
	return c
}

// LCPU is a logical CPU: the unit the OS schedules software threads onto
// and the granularity at which performance counters exist.
type LCPU struct {
	ID       int // global logical CPU index, assigned by the machine
	SMTIndex int
	Core     *Core
	Mem      Memory
	Counters counters.Set

	// PredOverride, when non-nil, replaces the core's shared predictor
	// for this logical CPU. It exists for the private-predictor ablation
	// that isolates the SMT predictor-sharing effect.
	PredOverride *branch.Predictor

	now     float64 // local clock, global cycle domain
	busy    float64 // cycles spent executing (not idling)
	running bool    // a software thread is currently scheduled here
	frac    float64 // fractional retired-instruction accumulator
}

// Busy returns the cycles this logical CPU spent executing instructions or
// context switches (as opposed to idling), since construction.
func (l *LCPU) Busy() float64 { return l.busy }

// Now returns the logical CPU's local clock in cycles.
func (l *LCPU) Now() uint64 { return uint64(l.now) }

// NowF returns the local clock with sub-cycle precision.
func (l *LCPU) NowF() float64 { return l.now }

// SyncTo advances the local clock to at least cycle t (idling: clockticks
// pass with no instructions retired). Used by the scheduler when the CPU
// waits for an event.
func (l *LCPU) SyncTo(t float64) {
	if t > l.now {
		l.now = t
	}
}

// SetRunning marks whether a software thread occupies this logical CPU;
// the core uses the count of running siblings to split issue bandwidth.
func (l *LCPU) SetRunning(r bool) {
	if r == l.running {
		return
	}
	l.running = r
	if r {
		l.Core.active++
	} else {
		l.Core.active--
	}
}

// Running reports whether a software thread occupies this logical CPU.
func (l *LCPU) Running() bool { return l.running }

// issueCost returns cycles per retired instruction under current SMT load.
func (l *LCPU) issueCost() float64 {
	c := 1.0 / l.Core.Cfg.IssueWidth
	switch {
	case l.Core.active > 1:
		c *= float64(l.Core.active) * l.Core.Cfg.SMTOverhead
	case len(l.Core.LCPUs) > 1 && l.Core.Cfg.SMTStatic > 0:
		c *= l.Core.Cfg.SMTStatic
	}
	return c
}

// retire charges n abstract ops expanded by factor into retired
// instructions and issue cycles, with fractional carry so long runs are
// exact.
func (l *LCPU) retire(n float64, expand float64) {
	insns := n*expand + l.frac
	whole := uint64(insns)
	l.frac = insns - float64(whole)
	l.Counters.Add(counters.InstrRetired, whole)
	l.now += insns * l.issueCost()
}

// Execute runs an op stream to completion on this logical CPU, advancing
// its clock and updating its counters. The stream is executed atomically
// with respect to simulated time slicing: callers chunk streams at the
// quantum granularity they need.
func (l *LCPU) Execute(ops []trace.Op) {
	start := l.now
	defer func() { l.busy += l.now - start }()
	cfg := &l.Core.Cfg
	for _, op := range ops {
		switch op.Kind {
		case trace.ALU:
			l.retire(float64(op.N), l.Core.Profile.ALUExpand)
		case trace.Load, trace.Store:
			write := op.Kind == trace.Store
			addr := op.Addr
			for i := uint32(0); i < op.N; i++ {
				l.retire(1, l.Core.Profile.MemExpand)
				l.Counters.Add(counters.DataMemAccesses, 1)
				if stall := l.Mem.Access(uint64(l.now), addr, write, &l.Counters); stall > 0 {
					l.now += stall
				}
				addr += trace.WordBytes
			}
		case trace.Branch:
			events := uint64(l.Core.Profile.BranchEvents)
			l.retire(float64(events), 1)
			l.Counters.Add(counters.BranchRetired, events)
			pred := l.Core.Pred
			if l.PredOverride != nil {
				pred = l.PredOverride
			}
			if pred.Predict(op.Addr, op.Taken) {
				l.Counters.Add(counters.BranchMispredict, 1)
				l.now += cfg.MispredictPenalty
			}
		}
	}
}

// ExecuteBuffer is a convenience wrapper over Execute for a trace.Buffer.
func (l *LCPU) ExecuteBuffer(b *trace.Buffer) { l.Execute(b.Ops) }

// ContextSwitchCost is the direct cost in cycles of an OS context switch
// (register save/restore, scheduler path). Cache and TLB disturbance is
// modeled structurally by the hierarchy, not folded in here.
const ContextSwitchCost = 1500

// ContextSwitch charges a context switch to a new process on this CPU.
// sameSpace indicates the incoming thread shares the outgoing thread's
// address space (no TLB flush).
func (l *LCPU) ContextSwitch(sameSpace bool) {
	l.now += ContextSwitchCost
	l.busy += ContextSwitchCost
	if !sameSpace && l.Mem != nil {
		l.Mem.ContextSwitch()
	}
}
