package counters

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddGetReset(t *testing.T) {
	var s Set
	s.Add(InstrRetired, 100)
	s.Add(InstrRetired, 50)
	s.Add(L2Misses, 7)
	if s.Get(InstrRetired) != 150 || s.Get(L2Misses) != 7 {
		t.Fatalf("get = %d/%d", s.Get(InstrRetired), s.Get(L2Misses))
	}
	s.Reset()
	if s.Get(InstrRetired) != 0 {
		t.Fatal("reset failed")
	}
}

func TestSnapshotSubMerge(t *testing.T) {
	var s Set
	s.Add(Clockticks, 1000)
	snap := s.Snapshot()
	s.Add(Clockticks, 500)
	d := s.Snapshot().Sub(snap)
	if d.Get(Clockticks) != 500 {
		t.Fatalf("delta = %d", d.Get(Clockticks))
	}
	var merged Set
	merged.Merge(s)
	merged.Merge(s)
	if merged.Get(Clockticks) != 3000 {
		t.Fatalf("merge = %d", merged.Get(Clockticks))
	}
}

func TestDerive(t *testing.T) {
	var s Set
	s.Add(Clockticks, 2000)
	s.Add(InstrRetired, 1000)
	s.Add(L2Misses, 10)
	s.Add(BusTxns, 20)
	s.Add(BranchRetired, 300)
	s.Add(BranchMispredict, 6)
	m := Derive(s)
	if m.CPI != 2.0 {
		t.Errorf("CPI = %v", m.CPI)
	}
	if m.L2MPI != 1.0 {
		t.Errorf("L2MPI = %v", m.L2MPI)
	}
	if m.BTPI != 2.0 {
		t.Errorf("BTPI = %v", m.BTPI)
	}
	if m.BranchFreq != 30.0 {
		t.Errorf("BranchFreq = %v", m.BranchFreq)
	}
	if m.BrMPR != 2.0 {
		t.Errorf("BrMPR = %v", m.BrMPR)
	}
}

func TestDeriveEmpty(t *testing.T) {
	m := Derive(Set{})
	if m.CPI != 0 || m.BrMPR != 0 {
		t.Fatalf("empty derive = %+v", m)
	}
}

func TestEventNames(t *testing.T) {
	seen := map[string]bool{}
	for e := Event(0); e < NumEvents; e++ {
		name := e.String()
		if name == "" || name == "invalid" {
			t.Fatalf("event %d has no name", e)
		}
		if seen[name] {
			t.Fatalf("duplicate event name %q", name)
		}
		seen[name] = true
	}
	if Event(-1).String() != "invalid" || NumEvents.String() != "invalid" {
		t.Fatal("out-of-range events not flagged")
	}
}

func TestFormatContainsAllEvents(t *testing.T) {
	var s Set
	s.Add(TLBMisses, 42)
	out := s.Format()
	for e := Event(0); e < NumEvents; e++ {
		if !strings.Contains(out, e.String()) {
			t.Fatalf("format missing %s", e)
		}
	}
	if !strings.Contains(out, "42") {
		t.Fatal("format missing value")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{CPI: 1.5, L2MPI: 0.2, BTPI: 0.3, BranchFreq: 30, BrMPR: 1.1}
	s := m.String()
	for _, want := range []string{"CPI=1.50", "BrFreq=30%", "BrMPR=1.10%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("metrics string %q missing %q", s, want)
		}
	}
}

// Property: Sub is the inverse of accumulation — for any event deltas,
// (s + d).Sub(s) == d.
func TestSubInverseProperty(t *testing.T) {
	check := func(base, delta [int(NumEvents)]uint32) bool {
		var s Set
		for e := Event(0); e < NumEvents; e++ {
			s.Add(e, uint64(base[e]))
		}
		snap := s.Snapshot()
		for e := Event(0); e < NumEvents; e++ {
			s.Add(e, uint64(delta[e]))
		}
		d := s.Sub(snap)
		for e := Event(0); e < NumEvents; e++ {
			if d.Get(e) != uint64(delta[e]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
