// Package counters provides the on-chip performance-counter abstraction the
// paper's methodology is built on (Section 3.3): raw per-logical-CPU event
// counts (clockticks, instructions retired, cache misses, bus transactions,
// branch events, TLB misses) and the derived metrics reported in the
// evaluation — CPI, L2 misses per instruction (L2MPI), bus transactions per
// instruction (BTPI), branch frequency, and branch misprediction ratio
// (BrMPR).
package counters

import (
	"fmt"
	"strings"
)

// Event identifies one countable processor event, mirroring the VTune event
// list in the paper.
type Event int

const (
	// Clockticks counts elapsed core cycles, including idle/halted cycles:
	// system-wide VTune sampling attributes wall-clock cycles to every
	// logical CPU whether or not it retires instructions, which is what
	// makes CPI rise when a second processor sits idle (Section 4,
	// conclusion 1).
	Clockticks Event = iota
	// InstrRetired counts retired instructions.
	InstrRetired
	// L1Misses counts L1 data-cache misses.
	L1Misses
	// L2Misses counts unified L2 cache misses.
	L2Misses
	// DataMemAccesses counts data memory accesses (loads + stores).
	DataMemAccesses
	// BusTxns counts front-side bus transactions initiated by this CPU.
	BusTxns
	// BranchRetired counts retired branch instructions.
	BranchRetired
	// BranchMispredict counts retired mispredicted branches.
	BranchMispredict
	// TLBMisses counts data TLB misses.
	TLBMisses
	// BusyCycles counts non-idle cycles (cycles with a thread scheduled);
	// not a hardware counter per se, but needed to audit the idle model.
	BusyCycles
	// NumEvents is the number of defined events.
	NumEvents
)

var eventNames = [NumEvents]string{
	"clockticks",
	"instr-retired",
	"l1-misses",
	"l2-misses",
	"data-mem-accesses",
	"bus-txns",
	"branch-retired",
	"branch-mispredict",
	"tlb-misses",
	"busy-cycles",
}

func (e Event) String() string {
	if e < 0 || e >= NumEvents {
		return "invalid"
	}
	return eventNames[e]
}

// Set is one logical CPU's bank of counters.
type Set struct {
	counts [NumEvents]uint64
}

// Add increments event e by n.
func (s *Set) Add(e Event, n uint64) { s.counts[e] += n }

// Get returns the current value of event e.
func (s *Set) Get(e Event) uint64 { return s.counts[e] }

// Reset zeroes all counters.
func (s *Set) Reset() { s.counts = [NumEvents]uint64{} }

// Snapshot returns a copy of the counter bank.
func (s *Set) Snapshot() Set { return *s }

// Sub returns s - old, the event deltas over a measurement window.
func (s Set) Sub(old Set) Set {
	var d Set
	for i := range s.counts {
		d.counts[i] = s.counts[i] - old.counts[i]
	}
	return d
}

// Merge accumulates other into s; used to aggregate logical CPUs into the
// system-wide totals VTune sampling reports.
func (s *Set) Merge(other Set) {
	for i := range s.counts {
		s.counts[i] += other.counts[i]
	}
}

// Metrics are the derived ratios the paper's tables and figures report.
type Metrics struct {
	CPI        float64 // cycles per retired instruction
	L2MPI      float64 // L2 misses per retired instruction, as %
	BTPI       float64 // bus transactions per retired instruction, as %
	BranchFreq float64 // branch instructions per retired instruction, as %
	BrMPR      float64 // branch mispredictions per retired branch, as %
	TLBMPI     float64 // TLB misses per retired instruction, as %
	L1MPI      float64 // L1 misses per retired instruction, as %
}

// Derive computes the paper's metrics from a counter bank (typically the
// system-wide merge over all logical CPUs).
func Derive(s Set) Metrics {
	instr := float64(s.Get(InstrRetired))
	var m Metrics
	if instr == 0 {
		return m
	}
	m.CPI = float64(s.Get(Clockticks)) / instr
	m.L2MPI = 100 * float64(s.Get(L2Misses)) / instr
	m.BTPI = 100 * float64(s.Get(BusTxns)) / instr
	m.BranchFreq = 100 * float64(s.Get(BranchRetired)) / instr
	m.L1MPI = 100 * float64(s.Get(L1Misses)) / instr
	m.TLBMPI = 100 * float64(s.Get(TLBMisses)) / instr
	if br := float64(s.Get(BranchRetired)); br > 0 {
		m.BrMPR = 100 * float64(s.Get(BranchMispredict)) / br
	}
	return m
}

// String renders the metrics in the units the paper uses.
func (m Metrics) String() string {
	return fmt.Sprintf("CPI=%.2f L2MPI=%.2f%% BTPI=%.2f%% BrFreq=%.0f%% BrMPR=%.2f%%",
		m.CPI, m.L2MPI, m.BTPI, m.BranchFreq, m.BrMPR)
}

// Format renders a counter bank as a readable multi-line table, used by
// the CLI tools and examples.
func (s Set) Format() string {
	var b strings.Builder
	for e := Event(0); e < NumEvents; e++ {
		fmt.Fprintf(&b, "%-20s %15d\n", e.String(), s.Get(e))
	}
	return b.String()
}
