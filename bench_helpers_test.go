package repro

import (
	"repro/internal/perf/trace"
	"repro/internal/xmldom"
)

// parseForBench parses with instrumentation attached, as the simulated
// workers do, so BenchmarkXMLParse measures the real per-message host cost.
func parseForBench(msg []byte) (*xmldom.Node, error) {
	var c trace.Counting
	arena := trace.NewArena(1<<32, 1<<20)
	return xmldom.ParseInstrumented(msg, &c, 0x1000, arena)
}
