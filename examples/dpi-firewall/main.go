// dpi-firewall demonstrates the future-work extensions (paper Section 6):
// deep packet inspection with a custom signature set and HMAC-SHA1 message
// authentication, both as plain libraries and under simulation on the
// dual-core machine.
package main

import (
	"fmt"
	"log"

	aon "repro/internal/core"
	"repro/internal/dpi"
	"repro/internal/netsim"
	"repro/internal/perf/machine"
	"repro/internal/sim/sched"
	"repro/internal/wcrypto"
	"repro/internal/workload"
)

func main() {
	// 1. Library-level DPI: build a matcher, scan payloads.
	m := dpi.MustNewMatcher([]string{"<!ENTITY", "javascript:", "DROP TABLE"})
	fmt.Printf("signature automaton: %d states, %d simulated KB\n",
		m.States(), m.SimBytes()>>10)

	payloads := map[string][]byte{
		"clean order":    workload.SOAPMessage(4),
		"xxe attempt":    []byte(`<?xml version="1.0"?><!DOCTYPE x [<!ENTITY e SYSTEM "file:///etc/passwd">]><x>&e;</x>`),
		"script smuggle": []byte(`<note>click <a href="javascript:boom()">here</a></note>`),
	}
	for name, p := range payloads {
		matches := m.Scan(p)
		verdict := "PASS"
		if len(matches) > 0 {
			verdict = fmt.Sprintf("BLOCK (%d signature hits)", len(matches))
		}
		fmt.Printf("  %-15s %s\n", name, verdict)
	}

	// 2. Library-level message authentication.
	body := workload.SOAPMessage(9)
	mac := wcrypto.HMAC(workload.AuthKey, body, nil, 0)
	fmt.Printf("\nHMAC-SHA1 of message 9: %x...\n", mac[:8])
	fmt.Printf("SHA-1 self-check: %s\n", wcrypto.HexSum1([]byte("abc")))

	// 3. The same operations as AON use cases under full simulation.
	for _, uc := range workload.ExtendedUseCases {
		mach := machine.New(machine.TwoCPm, machine.Options{})
		e := sched.NewEngine(mach)
		nic := netsim.NewNIC(e, e.Space.NewProcess(),
			netsim.NewLink(mach, 1e9), netsim.NewLink(mach, 1e9))
		server, err := aon.New(e, nic, aon.Config{UseCase: uc})
		if err != nil {
			log.Fatal(err)
		}
		server.SpawnThreads()
		aon.NewClient(server, uc, 16).Start()
		end := e.Run(func(*sched.Engine) bool { return server.Stats.Messages >= 120 })
		secs := mach.Seconds(end)
		fmt.Printf("\n%s on 2CPm: %.0f msg/s (%.0f Mbps)\n",
			uc, float64(server.Stats.Messages)/secs,
			float64(server.Stats.BytesIn)*8/secs/1e6)
		if uc == workload.DPI {
			fmt.Printf("  clean=%d quarantined=%d\n", server.Stats.CleanDPI, server.Stats.RoutedError)
		} else {
			fmt.Printf("  authenticated=%d rejected=%d\n", server.Stats.AuthOK, server.Stats.RoutedError)
		}
	}
}
