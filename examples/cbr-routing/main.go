// cbr-routing walks through the Content-Based Routing pipeline as a plain
// library (no simulation): HTTP parsing, DOM construction, XPath
// evaluation and the routing decision — the paper's Section 3.2.1 use
// case, end to end, on real messages.
package main

import (
	"fmt"
	"log"

	aon "repro/internal/core"
	"repro/internal/httpmsg"
	"repro/internal/workload"
	"repro/internal/xmldom"
	"repro/internal/xpath"
)

func main() {
	// The paper's routing rule: forward to the order endpoint when
	// //quantity/text() equals "1", else to the error handler.
	route := xpath.MustCompile(aon.RouteExprSource)
	ev := xpath.NewEvaluator(nil)

	endpoints := map[bool]string{
		true:  "http://orders.internal/submit",
		false: "http://errors.internal/reject",
	}
	counts := map[string]int{}

	for i := 0; i < 10; i++ {
		// A client HTTP POST carrying a 5 KB AONBench SOAP message.
		raw := workload.HTTPRequest(i, workload.CBR)

		req, err := httpmsg.ParseRequest(raw)
		if err != nil {
			log.Fatalf("message %d: %v", i, err)
		}
		doc, err := xmldom.Parse(req.Body)
		if err != nil {
			log.Fatalf("message %d: %v", i, err)
		}

		val, err := ev.EvalString(route, doc)
		if err != nil {
			log.Fatalf("message %d: %v", i, err)
		}
		matched := val == aon.RouteMatchValue
		dest := endpoints[matched]
		counts[dest]++

		// The proxy rewrites the target and forwards the original body.
		fwd := &httpmsg.Request{
			Method: req.Method,
			Target: dest,
			Proto:  req.Proto,
			Headers: append([]httpmsg.Header{
				{Name: "Via", Value: "1.1 aon-gw"},
			}, req.Headers...),
			Body: req.Body,
		}
		out := httpmsg.FormatRequest(fwd)
		fmt.Printf("message %2d: quantity=%q -> %-34s (%d bytes forwarded)\n",
			i, val, dest, len(out))
	}

	fmt.Println()
	for dest, n := range counts {
		fmt.Printf("%-34s %d messages\n", dest, n)
	}

	// Demonstrate a richer expression on the same documents: orders with
	// any line item worth more than 400.
	expensive := xpath.MustCompile(`count(//item[price > 400])`)
	doc, _ := xmldom.Parse(mustBody(workload.HTTPRequest(3, workload.CBR)))
	n, err := ev.EvalString(expensive, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmessage 3 has %s line items priced above 400\n", n)
}

func mustBody(raw []byte) []byte {
	req, err := httpmsg.ParseRequest(raw)
	if err != nil {
		log.Fatal(err)
	}
	return req.Body
}
