// schema-validation exercises the SV use case as a plain library: schema
// authoring with the supported XSD subset, validation of conforming and
// violating documents, and the paper's trick of using "a modified input
// message [to] verify whether the XML server application is executing this
// use case correctly" (Section 3.2.1).
package main

import (
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/internal/xmldom"
	"repro/internal/xsd"
)

const inventorySchema = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="binType">
    <xs:restriction base="xs:string">
      <xs:enumeration value="bulk"/>
      <xs:enumeration value="shelf"/>
      <xs:enumeration value="cold"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:element name="inventory">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="site" type="xs:string"/>
        <xs:element name="audited" type="xs:date" minOccurs="0"/>
        <xs:element name="entry" maxOccurs="unbounded">
          <xs:complexType>
            <xs:all>
              <xs:element name="sku" type="xs:string"/>
              <xs:element name="count" type="xs:nonNegativeInteger"/>
              <xs:element name="bin" type="binType" minOccurs="0"/>
            </xs:all>
            <xs:attribute name="id" type="xs:string" use="required"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func main() {
	schema, err := xsd.ParseSchema([]byte(inventorySchema))
	if err != nil {
		log.Fatal(err)
	}

	docs := map[string]string{
		"valid": `<inventory>
			<site>warehouse-7</site>
			<audited>2007-03-14</audited>
			<entry id="e1"><sku>A-100</sku><count>12</count><bin>bulk</bin></entry>
			<entry id="e2"><count>3</count><sku>B-200</sku></entry>
		</inventory>`,
		"bad enumeration": `<inventory>
			<site>warehouse-7</site>
			<entry id="e1"><sku>A-100</sku><count>12</count><bin>freezer</bin></entry>
		</inventory>`,
		"missing required attribute": `<inventory>
			<site>warehouse-7</site>
			<entry><sku>A-100</sku><count>12</count></entry>
		</inventory>`,
		"bad integer": `<inventory>
			<site>warehouse-7</site>
			<entry id="e1"><sku>A-100</sku><count>minus two</count></entry>
		</inventory>`,
	}

	for name, src := range docs {
		doc, err := xmldom.Parse([]byte(src))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		errs := xsd.Validate(schema, doc)
		if len(errs) == 0 {
			fmt.Printf("%-28s VALID\n", name)
			continue
		}
		fmt.Printf("%-28s INVALID: %v\n", name, errs[0])
	}

	// The AONBench flow: validate a generated purchase order, then the
	// deliberately corrupted variant the paper uses as a self-check.
	fmt.Println()
	orders := workload.OrderSchema()
	good, _ := xmldom.Parse(workload.SOAPMessage(1))
	bad, _ := xmldom.Parse(workload.InvalidSOAPMessage(1))
	fmt.Printf("AONBench message:          valid=%v\n", len(xsd.Validate(orders, good)) == 0)
	badErrs := xsd.Validate(orders, bad)
	fmt.Printf("modified AONBench message: valid=%v (%v)\n", len(badErrs) == 0, badErrs[0])
}
