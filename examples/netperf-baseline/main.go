// netperf-baseline reproduces Figure 2 interactively: the netperf
// workalike in both modes across all five configurations, printed next to
// the paper's published bars.
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/netperf"
	"repro/internal/perf/machine"
)

func main() {
	opts := harness.DefaultNetperfOpts
	opts.MeasureMs = 6

	fmt.Println("Figure 2 baseline: netperf throughput (Mbps), paper vs measured")
	fmt.Printf("%-6s | %-22s | %-22s\n", "", "loopback", "end-to-end")
	fmt.Printf("%-6s | %10s %10s | %10s %10s\n", "config", "paper", "measured", "paper", "measured")
	for _, id := range machine.AllConfigs {
		lb := harness.RunNetperf(id, netperf.Loopback, opts)
		ee := harness.RunNetperf(id, netperf.EndToEnd, opts)
		fmt.Printf("%-6s | %10.0f %10.0f | %10.0f %10.0f\n", id,
			harness.PaperNetperfLoopback.ThroughputMbps[id], lb.Mbps,
			harness.PaperNetperfEndToEnd.ThroughputMbps[id], ee.Mbps)
	}

	fmt.Println("\nKey relations (Section 4):")
	fmt.Println("  - every configuration saturates the gigabit wire end-to-end")
	fmt.Println("  - loopback degrades from one to two processing units on both platforms")
	fmt.Println("  - the degradation is far more severe for two physical Xeons (2PPx),")
	fmt.Println("    whose producer/consumer traffic crosses the front-side bus per line")
}
