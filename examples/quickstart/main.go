// Quickstart: build a simulated AON device, push a handful of XML messages
// through the CBR use case, and read the on-chip performance counters —
// the five-minute tour of the reproduction's public API.
package main

import (
	"fmt"
	"log"

	aon "repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/perf/counters"
	"repro/internal/perf/machine"
	"repro/internal/sim/sched"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a system under test from the paper's Table 2. Here: the
	// dual-core Pentium M.
	m := machine.New(machine.TwoCPm, machine.Options{})
	fmt.Println("machine:", m)

	// 2. Wrap it in the OS/scheduler layer and wire a NIC with gigabit
	// links, like the paper's testbed.
	e := sched.NewEngine(m)
	rx := netsim.NewLink(m, 1e9)
	tx := netsim.NewLink(m, 1e9)
	nic := netsim.NewNIC(e, e.Space.NewProcess(), rx, tx)

	// 3. Start the XML server application in Content-Based Routing mode:
	// each HTTP POST's body is parsed and //quantity/text() decides the
	// destination endpoint.
	server, err := aon.New(e, nic, aon.Config{UseCase: workload.CBR})
	if err != nil {
		log.Fatal(err)
	}
	server.SpawnThreads()

	// 4. Generate load: a closed-loop client keeping 16 messages in
	// flight over the receive link.
	client := aon.NewClient(server, workload.CBR, 16)
	client.Start()

	// 5. Run until 200 messages have been proxied.
	m.ResetWindow()
	end := e.Run(func(*sched.Engine) bool { return server.Stats.Messages >= 200 })
	m.CloseWindow(end)

	// 6. Read the results: application stats and the system-wide counters
	// the paper's VTune methodology reports.
	secs := m.Seconds(end)
	fmt.Printf("processed %d messages in %.2f simulated ms (%.0f Mbps)\n",
		server.Stats.Messages, secs*1e3,
		float64(server.Stats.BytesIn)*8/secs/1e6)
	fmt.Printf("routing: %d matched //quantity/text()=1, %d to the error endpoint\n",
		server.Stats.RoutedMatch, server.Stats.RoutedError)

	sys := m.SystemCounters()
	fmt.Println("\nsystem-wide performance counters:")
	fmt.Print(sys.Format())
	fmt.Println("derived metrics:", counters.Derive(sys))
}
